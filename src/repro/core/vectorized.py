"""NumPy-vectorized per-node coordinate state: the batch write path.

The scalar core (:mod:`repro.core.node` and friends) processes one latency
observation at a time through Python objects, which caps tick-based
simulations at a few hundred nodes.  :class:`VectorizedNodeState` holds the
*same* state for a whole population as flat arrays -- coordinates ``(n, d)``,
error estimates ``(n,)``, per-link filter ring buffers ``(n, k, h)``, and
heuristic windows ``(n, w, d)`` -- and advances every node's observation for
a tick in one :meth:`observe_batch` call.

Bit-for-bit parity with the scalar core is a design goal, not an accident:
every formula below is written in the *same floating-point operation order*
as its scalar counterpart (``vivaldi_update``, ``percentile_of``, the
heuristics' centroid and energy computations), so that a vectorized run
reproduces the scalar oracle's per-node coordinates byte-identically, not
merely "within tolerance".  Where NumPy's reduction order could differ from
the scalar code (sums across dimensions), the reduction is spelled out as a
sequential accumulation.  The equivalence tests in
``tests/test_vectorized.py`` pin this down.

The whole scalar surface is vectorized:

* filters: ``mp`` / ``moving_percentile`` / ``median`` / ``ewma`` /
  ``threshold`` / ``none`` / ``raw``;
* heuristics: ``always`` / ``raw`` / ``system`` / ``application`` /
  ``application_centroid`` / ``energy`` / ``relative`` (the RELATIVE
  heuristic's nearest-neighbor scan runs over a per-(node, slot) array of
  last-heard peer coordinates, with insertion sequence numbers so distance
  ties resolve exactly like the scalar dict scan);
* Vivaldi with or without the height augmentation (``use_height``; the
  height spring, the height-aware predicted RTTs and the centroid height
  averaging all follow the scalar operation order).

:func:`unsupported_reasons` remains the scenario layer's validation hook:
it reports configurations naming kinds this module does not implement
(empty today; future scalar-only kinds would surface here instead of
failing mid-run).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.config import NodeConfig
from repro.core.coordinate import Coordinate
from repro.core.vivaldi import (
    MAX_ERROR_ESTIMATE,
    MIN_ERROR_ESTIMATE,
    MIN_LATENCY_MS,
)

__all__ = [
    "BackendUnsupportedError",
    "TickObservations",
    "VectorizedNodeState",
    "unsupported_reasons",
    "VECTORIZED_FILTER_KINDS",
    "VECTORIZED_HEURISTIC_KINDS",
]

#: Filter kinds the vectorized write path implements.
VECTORIZED_FILTER_KINDS = (
    "mp",
    "moving_percentile",
    "median",
    "ewma",
    "threshold",
    "none",
    "raw",
)

#: Heuristic kinds the vectorized write path implements.
VECTORIZED_HEURISTIC_KINDS = (
    "always",
    "raw",
    "system",
    "application",
    "application_centroid",
    "energy",
    "relative",
)


class BackendUnsupportedError(ValueError):
    """The node configuration cannot run on the vectorized backend."""


def unsupported_reasons(config: NodeConfig) -> List[str]:
    """Why ``config`` cannot run vectorized (empty list = fully supported).

    Used by :class:`~repro.scenarios.spec.ScenarioSpec` validation so a
    ``backend='vectorized'`` scenario with e.g. the RELATIVE heuristic
    fails at spec-construction time with a readable message instead of
    mid-run.
    """
    reasons: List[str] = []
    if config.filter.kind.lower() not in VECTORIZED_FILTER_KINDS:
        reasons.append(
            f"filter kind {config.filter.kind!r} is not vectorized "
            f"(supported: {sorted(set(VECTORIZED_FILTER_KINDS))})"
        )
    if config.heuristic.kind.lower() not in VECTORIZED_HEURISTIC_KINDS:
        reasons.append(
            f"heuristic kind {config.heuristic.kind!r} is not vectorized "
            f"(supported: {sorted(set(VECTORIZED_HEURISTIC_KINDS))})"
        )
    return reasons


@dataclass(slots=True)
class TickObservations:
    """Arrays describing one tick's completed observations.

    All arrays are aligned: element ``i`` describes the observation made by
    node ``node_idx[i]`` of node ``peer_idx[i]`` through neighbor slot
    ``slot_idx[i]`` with raw sample ``rtt_ms[i]``.  Each node appears at
    most once per tick (one ping per sampling round, as in the protocol).
    """

    node_idx: np.ndarray
    peer_idx: np.ndarray
    slot_idx: np.ndarray
    rtt_ms: np.ndarray


@dataclass(slots=True)
class TickOutcome:
    """Per-observation outcome arrays (aligned with the tick's inputs).

    ``relative_error`` / ``application_relative_error`` are ``NaN`` for
    observations the per-link filter swallowed (warm-up / threshold), the
    same cases where the scalar :class:`~repro.core.node.ObservationResult`
    reports ``None``.
    """

    system_coords: np.ndarray
    application_coords: np.ndarray
    relative_error: np.ndarray
    application_relative_error: np.ndarray
    application_updated: np.ndarray


class VectorizedNodeState:
    """Array-of-structs coordinate state for ``count`` nodes.

    Parameters
    ----------
    count:
        Number of nodes.
    config:
        The (shared) per-node configuration; must pass
        :func:`unsupported_reasons`.
    neighbor_slots:
        Maximum neighbor-list length across nodes; sizes the per-link
        filter state ``(count, neighbor_slots, ...)``.
    """

    def __init__(self, count: int, config: NodeConfig, neighbor_slots: int) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        if neighbor_slots < 1:
            raise ValueError("neighbor_slots must be >= 1")
        reasons = unsupported_reasons(config)
        if reasons:
            raise BackendUnsupportedError("; ".join(reasons))
        self.count = count
        self.config = config
        self.dimensions = config.vivaldi.dimensions

        # Vivaldi state (VivaldiState.initial: origin coordinate, max error).
        self.coords = np.zeros((count, self.dimensions), dtype=np.float64)
        self.error = np.full(count, float(config.vivaldi.initial_error), dtype=np.float64)
        #: Height term of the augmented coordinate space (all zero -- the
        #: pure metric space -- unless ``use_height`` is set).
        self._use_height = bool(config.vivaldi.use_height)
        self.height = np.zeros(count, dtype=np.float64)

        # --- per-link filter state --------------------------------------
        kind = config.filter.kind.lower()
        params = dict(config.filter.params)
        self._filter_kind = kind
        if kind in ("mp", "moving_percentile", "median"):
            self._history = int(params.get("history", 4))
            self._percentile = 50.0 if kind == "median" else float(
                params.get("percentile", 25.0)
            )
            self._warmup = int(params.get("warmup", 1))
            if not 1 <= self._warmup <= self._history:
                raise ValueError("warmup must be within [1, history]")
            self._windows = np.full(
                (count, neighbor_slots, self._history), np.nan, dtype=np.float64
            )
            self._window_counts = np.zeros((count, neighbor_slots), dtype=np.int64)
        elif kind == "ewma":
            self._alpha = float(params.get("alpha", 0.10))
            self._ewma = np.full((count, neighbor_slots), np.nan, dtype=np.float64)
        elif kind == "threshold":
            self._threshold_ms = float(params.get("threshold_ms", 1000.0))
        # "none"/"raw": stateless.

        # --- heuristic state --------------------------------------------
        hkind = config.heuristic.kind.lower()
        hparams = dict(config.heuristic.params)
        self._heuristic_kind = hkind
        self.app_coords = np.zeros((count, self.dimensions), dtype=np.float64)
        self.app_height = np.zeros(count, dtype=np.float64)
        self.has_app = np.zeros(count, dtype=bool)
        if hkind == "system":
            self._tau = float(hparams.get("threshold_ms", 16.0))
            self._prev_system = np.zeros((count, self.dimensions), dtype=np.float64)
            self._has_prev_system = np.zeros(count, dtype=bool)
        elif hkind == "application":
            self._tau = float(hparams.get("threshold_ms", 16.0))
        elif hkind == "application_centroid":
            self._tau = float(hparams.get("threshold_ms", 16.0))
            self._window_size = int(hparams.get("window_size", 32))
            self._recent = np.zeros(
                (count, self._window_size, self.dimensions), dtype=np.float64
            )
            self._recent_count = np.zeros(count, dtype=np.int64)
            if self._use_height:
                self._recent_h = np.zeros((count, self._window_size), dtype=np.float64)
        elif hkind == "energy":
            self._tau = float(hparams.get("threshold", 8.0))
            self._window_size = int(hparams.get("window_size", 32))
            if self._window_size < 2:
                raise ValueError("window_size must be >= 2")
            w = self._window_size
            self._start_win = np.zeros((count, w, self.dimensions), dtype=np.float64)
            self._start_len = np.zeros(count, dtype=np.int64)
            self._cur_win = np.zeros((count, w, self.dimensions), dtype=np.float64)
            self._cur_count = np.zeros(count, dtype=np.int64)
            self._obs_since_reset = np.zeros(count, dtype=np.int64)
            if self._use_height:
                self._cur_h = np.zeros((count, w), dtype=np.float64)
            # The start window freezes once full, so its within-sample mean
            # pairwise distance is constant until the next change point --
            # cache it instead of recomputing O(w^2) distances per tick.
            self._within_start = np.zeros(count, dtype=np.float64)
            self._within_start_ok = np.zeros(count, dtype=bool)
        elif hkind == "relative":
            self._tau = float(hparams.get("relative_threshold", 0.3))
            if self._tau <= 0.0:
                raise ValueError("relative_threshold must be positive")
            self._window_size = int(hparams.get("window_size", 32))
            if self._window_size < 1:
                raise ValueError("window_size must be >= 1")
            w = self._window_size
            self._start_win = np.zeros((count, w, self.dimensions), dtype=np.float64)
            self._start_len = np.zeros(count, dtype=np.int64)
            self._cur_win = np.zeros((count, w, self.dimensions), dtype=np.float64)
            self._cur_count = np.zeros(count, dtype=np.int64)
            self._obs_since_reset = np.zeros(count, dtype=np.int64)
            if self._use_height:
                self._cur_h = np.zeros((count, w), dtype=np.float64)
            # The start window freezes once full, so its centroid is
            # constant until the next change point -- cache it.
            self._start_centroid = np.zeros((count, self.dimensions), dtype=np.float64)
            self._start_centroid_ok = np.zeros(count, dtype=bool)
            # RELATIVE's locale scale needs the nearest *known* peer: the
            # scalar node keeps a dict of last-heard peer coordinates; the
            # array equivalent is one row per (node, neighbor slot) plus
            # insertion sequence numbers so exact distance ties resolve in
            # the dict's first-observed order.
            self._peer_store = np.zeros(
                (count, neighbor_slots, self.dimensions), dtype=np.float64
            )
            self._peer_known = np.zeros((count, neighbor_slots), dtype=bool)
            self._peer_first_seen = np.zeros((count, neighbor_slots), dtype=np.int64)
            self._peer_insertions = np.zeros(count, dtype=np.int64)

        #: Wall-clock seconds spent per phase (filter / update / heuristic),
        #: for the ``--profile`` tooling.
        self.phase_seconds: Dict[str, float] = {
            "filter": 0.0,
            "update": 0.0,
            "heuristic": 0.0,
        }

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def application_view(self) -> np.ndarray:
        """Application coordinates with the pre-first-update fallback.

        Mirrors :attr:`CoordinateNode.application_coordinate`: before the
        heuristic has fired for a node, its application coordinate *is* its
        system coordinate.
        """
        return np.where(self.has_app[:, None], self.app_coords, self.coords)

    def application_height_view(self) -> np.ndarray:
        """Application-level heights with the same pre-first-update fallback."""
        return np.where(self.has_app, self.app_height, self.height)

    def coordinate_arrays(self, *, level: str = "application"):
        """``(components, heights)`` arrays for the whole population.

        The system-level view returns the live state arrays themselves (no
        copy); callers that need a stable snapshot must copy.
        """
        if level == "system":
            return self.coords, self.height
        return self.application_view(), self.application_height_view()

    def coordinate_objects(self, *, level: str = "application") -> List[Coordinate]:
        """Materialise per-node :class:`Coordinate` objects (reporting only)."""
        source, heights = self.coordinate_arrays(level=level)
        return [
            Coordinate(row.tolist(), height) for row, height in zip(source, heights)
        ]

    # ------------------------------------------------------------------
    # The batched observation step
    # ------------------------------------------------------------------
    def observe_batch(self, tick: TickObservations) -> TickOutcome:
        """Process one tick's observations for all observing nodes at once.

        Peer state (coordinate, error estimate, application coordinate) is
        read *before* any update -- the synchronous-round semantics of the
        batch model -- so the order of nodes within the arrays cannot
        influence the result.
        """
        idx = tick.node_idx
        m = idx.shape[0]
        d = self.dimensions
        if m == 0:
            empty = np.empty((0, d))
            none = np.empty(0)
            return TickOutcome(empty, empty, none, none, np.empty(0, dtype=bool))

        # Snapshot the peer state before mutating anything.
        peer_coords = self.coords[tick.peer_idx].copy()
        peer_error = self.error[tick.peer_idx].copy()
        peer_height = self.height[tick.peer_idx].copy()
        peer_has_app = self.has_app[tick.peer_idx]
        peer_app = np.where(
            peer_has_app[:, None],
            self.app_coords[tick.peer_idx],
            peer_coords,
        )
        peer_app_height = np.where(
            peer_has_app, self.app_height[tick.peer_idx], peer_height
        )

        if self._heuristic_kind == "relative":
            # The scalar node records the peer's coordinate on *every*
            # observation, before the filter gets a say.
            self._record_peers(idx, tick.slot_idx, peer_coords)

        started = time.perf_counter()
        filtered, emitted = self._filter_update(idx, tick.slot_idx, tick.rtt_ms)
        self.phase_seconds["filter"] += time.perf_counter() - started

        raw = np.maximum(tick.rtt_ms, MIN_LATENCY_MS)
        rel_err = np.full(m, np.nan)
        app_rel_err = np.full(m, np.nan)
        updated = np.zeros(m, dtype=bool)

        if np.any(emitted):
            e_sel = np.nonzero(emitted)[0]
            e_idx = idx[e_sel]

            started = time.perf_counter()
            self._vivaldi_update(
                e_idx,
                peer_coords[e_sel],
                peer_error[e_sel],
                peer_height[e_sel],
                filtered[e_sel],
            )
            new_coords = self.coords[e_idx]
            predicted = _euclidean_rows(new_coords, peer_coords[e_sel])
            if self._use_height:
                predicted = (predicted + self.height[e_idx]) + peer_height[e_sel]
            rel_err[e_sel] = np.abs(predicted - raw[e_sel]) / raw[e_sel]
            self.phase_seconds["update"] += time.perf_counter() - started

            started = time.perf_counter()
            updated[e_sel] = self._heuristic_update(e_idx, new_coords, self.height[e_idx])
            app_view = np.where(
                self.has_app[e_idx][:, None], self.app_coords[e_idx], self.coords[e_idx]
            )
            app_predicted = _euclidean_rows(app_view, peer_app[e_sel])
            if self._use_height:
                own_app_height = np.where(
                    self.has_app[e_idx], self.app_height[e_idx], self.height[e_idx]
                )
                app_predicted = (app_predicted + own_app_height) + peer_app_height[e_sel]
            app_rel_err[e_sel] = np.abs(app_predicted - raw[e_sel]) / raw[e_sel]
            self.phase_seconds["heuristic"] += time.perf_counter() - started

        return TickOutcome(
            system_coords=self.coords[idx].copy(),
            application_coords=np.where(
                self.has_app[idx][:, None], self.app_coords[idx], self.coords[idx]
            ),
            relative_error=rel_err,
            application_relative_error=app_rel_err,
            application_updated=updated,
        )

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------
    def _filter_update(
        self, idx: np.ndarray, slot: np.ndarray, rtt_ms: np.ndarray
    ) -> tuple:
        """Per-link filter step; returns ``(filtered_values, emitted_mask)``."""
        kind = self._filter_kind
        if kind in ("none", "raw"):
            return rtt_ms.astype(np.float64, copy=True), np.ones(idx.shape[0], dtype=bool)
        if kind == "threshold":
            emitted = rtt_ms <= self._threshold_ms
            return rtt_ms.astype(np.float64, copy=True), emitted
        if kind == "ewma":
            previous = self._ewma[idx, slot]
            fresh = np.isnan(previous)
            value = np.where(
                fresh, rtt_ms, self._alpha * rtt_ms + (1.0 - self._alpha) * previous
            )
            self._ewma[idx, slot] = value
            return value, np.ones(idx.shape[0], dtype=bool)

        # Moving percentile / median: per-link ring buffers.
        counts = self._window_counts[idx, slot]
        position = counts % self._history
        self._windows[idx, slot, position] = rtt_ms
        self._window_counts[idx, slot] = counts + 1
        length = np.minimum(counts + 1, self._history)
        emitted = length >= self._warmup

        rows = np.sort(self._windows[idx, slot], axis=1)  # NaNs sort last
        # percentile_of with linear interpolation, in the same operation
        # order as the scalar helper so results are byte-identical.
        rank = (self._percentile / 100.0) * (length - 1)
        lower = np.floor(rank).astype(np.int64)
        upper = np.ceil(rank).astype(np.int64)
        weight = rank - lower
        row_index = np.arange(rows.shape[0])
        lower_value = rows[row_index, lower]
        upper_value = rows[row_index, upper]
        filtered = lower_value * (1.0 - weight) + upper_value * weight
        return filtered, emitted

    # ------------------------------------------------------------------
    # Vivaldi (the batched spring step)
    # ------------------------------------------------------------------
    def _vivaldi_update(
        self,
        idx: np.ndarray,
        peer_coords: np.ndarray,
        peer_error: np.ndarray,
        peer_height: np.ndarray,
        filtered_rtt: np.ndarray,
    ) -> None:
        """Batched :func:`repro.core.vivaldi.vivaldi_update` over ``idx``."""
        cfg = self.config.vivaldi
        measured = np.maximum(filtered_rtt, MIN_LATENCY_MS)
        remote = _clamp_error_array(peer_error)
        local = _clamp_error_array(self.error[idx])

        total = local + remote
        positive = total > 0.0
        weight = np.where(positive, local / np.where(positive, total, 1.0), 0.5)

        own = self.coords[idx]
        delta = own - peer_coords
        euclid = _euclidean_from_delta(delta)
        if self._use_height:
            own_height = self.height[idx]
            predicted = (euclid + own_height) + peer_height
        else:
            predicted = euclid  # pure metric space: heights are zero

        if cfg.error_margin_ms > 0.0:
            within = np.abs(predicted - measured) <= cfg.error_margin_ms
            measured_for_error = np.where(
                within, np.where(predicted > 0.0, predicted, measured), measured
            )
        else:
            measured_for_error = measured

        relative_error = np.abs(predicted - measured_for_error) / np.maximum(
            measured_for_error, MIN_LATENCY_MS
        )
        alpha = cfg.ce * weight
        new_error = _clamp_error_array(alpha * relative_error + (1.0 - alpha) * local)

        # The adaptive per-node timestep: confident nodes take small steps,
        # uncertain ones large ones (delta = c_c * w_s in Figure 1).
        step = cfg.cc * weight
        moving = euclid > 0.0
        safe = np.where(moving, euclid, 1.0)
        unit = delta / safe[:, None]
        # Coinciding coordinates: deterministic push along the first axis,
        # exactly as Coordinate.unit_vector_toward's fallback.
        unit[~moving] = 0.0
        unit[~moving, 0] = 1.0

        displacement = step * (measured - euclid)
        new_coords = own + displacement[:, None] * unit
        self.coords[idx] = new_coords
        self.error[idx] = new_error

        if self._use_height:
            # The height spring absorbs the residual error the Euclidean
            # part cannot explain, in the exact scalar operation order.
            residual = measured - _euclidean_rows(new_coords, peer_coords)
            height_target = np.maximum(0.0, residual - peer_height)
            self.height[idx] = np.maximum(
                0.0, own_height + step * (height_target - own_height)
            )

    # ------------------------------------------------------------------
    # Heuristics
    # ------------------------------------------------------------------
    def _heuristic_update(
        self, idx: np.ndarray, system: np.ndarray, system_height: np.ndarray
    ) -> np.ndarray:
        """Apply the application-update heuristic; returns the fired mask.

        ``system_height`` carries the height component of the system
        coordinate (all zero in a pure metric space): the heuristics'
        distance tests are height-blind (``euclidean_distance``), but the
        application coordinate they publish adopts the full coordinate,
        height included.
        """
        kind = self._heuristic_kind
        if kind in ("always", "raw"):
            self.app_coords[idx] = system
            if self._use_height:
                self.app_height[idx] = system_height
            self.has_app[idx] = True
            return np.ones(idx.shape[0], dtype=bool)
        if kind == "application":
            distance = _euclidean_rows(self.app_coords[idx], system)
            fired = ~self.has_app[idx] | (distance > self._tau)
            f_idx = idx[fired]
            self.app_coords[f_idx] = system[fired]
            if self._use_height:
                self.app_height[f_idx] = system_height[fired]
            self.has_app[f_idx] = True
            return fired
        if kind == "system":
            previous = self._prev_system[idx]
            had_previous = self._has_prev_system[idx]
            moved = _euclidean_rows(previous, system) > self._tau
            fired = ~self.has_app[idx] | ~had_previous | moved
            self._prev_system[idx] = system
            self._has_prev_system[idx] = True
            f_idx = idx[fired]
            self.app_coords[f_idx] = system[fired]
            if self._use_height:
                self.app_height[f_idx] = system_height[fired]
            self.has_app[f_idx] = True
            return fired
        if kind == "application_centroid":
            return self._application_centroid_update(idx, system, system_height)
        if kind == "relative":
            return self._relative_update(idx, system, system_height)
        return self._energy_update(idx, system, system_height)

    def _application_centroid_update(
        self, idx: np.ndarray, system: np.ndarray, system_height: np.ndarray
    ) -> np.ndarray:
        w = self._window_size
        counts = self._recent_count[idx]
        self._recent[idx, counts % w] = system
        if self._use_height:
            self._recent_h[idx, counts % w] = system_height
        self._recent_count[idx] = counts + 1

        distance = _euclidean_rows(self.app_coords[idx], system)
        fired = ~self.has_app[idx] | (distance > self._tau)
        if np.any(fired):
            f_idx = idx[fired]
            self.app_coords[f_idx] = _ring_centroid(
                self._recent[f_idx], self._recent_count[f_idx], w
            )
            if self._use_height:
                self.app_height[f_idx] = _ring_centroid(
                    self._recent_h[f_idx][:, :, None], self._recent_count[f_idx], w
                )[:, 0]
            self.has_app[f_idx] = True
        return fired

    # -- two-window (Kifer et al.) shared bookkeeping ------------------
    #
    # ENERGY and RELATIVE share everything except the change test: the
    # start window fills then freezes, the current window slides, the
    # first emitted observation publishes the system coordinate, and a
    # fired change point resets both windows.  ``stale`` is the
    # heuristic's memo-validity array (the cached within-start statistic
    # for ENERGY, the cached start centroid for RELATIVE), invalidated
    # whenever the start window changes.

    def _two_window_add(
        self,
        idx: np.ndarray,
        system: np.ndarray,
        system_height: np.ndarray,
        stale: np.ndarray,
    ) -> np.ndarray:
        """ChangeDetectionWindows.add for every node in ``idx``; returns
        the fired-first-update mask."""
        w = self._window_size
        start_len = self._start_len[idx]
        filling = start_len < w
        fill_idx = idx[filling]
        self._start_win[fill_idx, start_len[filling]] = system[filling]
        self._start_len[fill_idx] = start_len[filling] + 1
        stale[fill_idx] = False

        cur_count = self._cur_count[idx]
        self._cur_win[idx, cur_count % w] = system
        if self._use_height:
            self._cur_h[idx, cur_count % w] = system_height
        self._cur_count[idx] = cur_count + 1
        self._obs_since_reset[idx] += 1

        # First update: the application coordinate adopts the system one.
        first = ~self.has_app[idx]
        f_idx = idx[first]
        self.app_coords[f_idx] = system[first]
        if self._use_height:
            self.app_height[f_idx] = system_height[first]
        self.has_app[f_idx] = True
        return first

    def _two_window_fire(
        self, o_idx: np.ndarray, centroid_over: np.ndarray, stale: np.ndarray
    ) -> None:
        """Publish the current-window centroid and declare a change point."""
        w = self._window_size
        self.app_coords[o_idx] = centroid_over
        if self._use_height:
            current_h = _ordered_ring(
                self._cur_h[o_idx][:, :, None], self._cur_count[o_idx], w
            )
            self.app_height[o_idx] = _window_centroid(current_h)[:, 0]
        # declare_change_point: both windows restart from scratch.
        self._start_len[o_idx] = 0
        self._cur_count[o_idx] = 0
        self._obs_since_reset[o_idx] = 0
        stale[o_idx] = False

    def _energy_update(
        self, idx: np.ndarray, system: np.ndarray, system_height: np.ndarray
    ) -> np.ndarray:
        w = self._window_size
        fired = self._two_window_add(idx, system, system_height, self._within_start_ok)
        first = fired.copy()
        ready = ~first & (self._obs_since_reset[idx] >= 2 * w)
        if np.any(ready):
            r_sel = np.nonzero(ready)[0]
            r_idx = idx[r_sel]
            current = _ordered_ring(self._cur_win[r_idx], self._cur_count[r_idx], w)
            statistic = self._energy_statistic(r_idx, current)
            over = statistic > self._tau
            if np.any(over):
                o_sel = r_sel[over]
                self._two_window_fire(
                    idx[o_sel], _window_centroid(current[over]), self._within_start_ok
                )
                fired[o_sel] = True
        return fired

    def _relative_update(
        self, idx: np.ndarray, system: np.ndarray, system_height: np.ndarray
    ) -> np.ndarray:
        """Batched :class:`~repro.core.heuristics.RelativeHeuristic`.

        Same two-window bookkeeping as ENERGY, but the trigger compares the
        centroid displacement against the distance from the (frozen) start
        centroid to the node's nearest known peer, scaled by the relative
        threshold.
        """
        w = self._window_size
        fired = self._two_window_add(idx, system, system_height, self._start_centroid_ok)
        first = fired.copy()
        ready = ~first & (self._obs_since_reset[idx] >= 2 * w)
        if np.any(ready):
            r_sel = np.nonzero(ready)[0]
            r_idx = idx[r_sel]
            start_centroid = self._start_centroid_for(r_idx)
            current = _ordered_ring(self._cur_win[r_idx], self._cur_count[r_idx], w)
            current_centroid = _window_centroid(current)
            displacement = _euclidean_rows(start_centroid, current_centroid)
            neighbor = self._nearest_known_peer(r_idx, system[r_sel])
            locale_scale = _euclidean_rows(start_centroid, neighbor)
            # A zero locale scale means the neighborhood is degenerate; the
            # scalar heuristic never fires in that case.
            over = np.zeros(r_idx.shape[0], dtype=bool)
            positive = locale_scale > 0.0
            over[positive] = (
                displacement[positive] / locale_scale[positive]
            ) > self._tau
            if np.any(over):
                o_sel = r_sel[over]
                self._two_window_fire(
                    idx[o_sel], current_centroid[over], self._start_centroid_ok
                )
                fired[o_sel] = True
        return fired

    def _start_centroid_for(self, node_idx: np.ndarray) -> np.ndarray:
        """Centroid of each node's (full, frozen) start window, memoised."""
        missing = ~self._start_centroid_ok[node_idx]
        if np.any(missing):
            miss_nodes = node_idx[missing]
            self._start_centroid[miss_nodes] = _window_centroid(
                self._start_win[miss_nodes]
            )
            self._start_centroid_ok[miss_nodes] = True
        return self._start_centroid[node_idx]

    def _record_peers(
        self, idx: np.ndarray, slot: np.ndarray, peer_coords: np.ndarray
    ) -> None:
        """Remember each observing node's peer coordinate (RELATIVE only)."""
        fresh = ~self._peer_known[idx, slot]
        if np.any(fresh):
            f_nodes = idx[fresh]
            f_slots = slot[fresh]
            order = self._peer_insertions[f_nodes]
            self._peer_first_seen[f_nodes, f_slots] = order
            self._peer_insertions[f_nodes] = order + 1
            self._peer_known[f_nodes, f_slots] = True
        self._peer_store[idx, slot] = peer_coords

    def _nearest_known_peer(
        self, node_idx: np.ndarray, own_coords: np.ndarray
    ) -> np.ndarray:
        """Coordinate of each node's closest known peer.

        Exact distance ties resolve toward the earliest-recorded peer,
        matching the scalar dict scan's first-strict-minimum behaviour.
        """
        store = self._peer_store[node_idx]
        known = self._peer_known[node_idx]
        delta = store - own_coords[:, None, :]
        acc = delta[:, :, 0] * delta[:, :, 0]
        for j in range(1, delta.shape[2]):
            acc = acc + delta[:, :, j] * delta[:, :, j]
        distances = np.sqrt(acc)
        distances[~known] = np.inf
        best = distances.min(axis=1)
        tie_rank = np.where(
            known & (distances == best[:, None]),
            self._peer_first_seen[node_idx],
            np.iinfo(np.int64).max,
        )
        choice = tie_rank.argmin(axis=1)
        rows = np.arange(store.shape[0])
        return store[rows, choice]

    def _energy_statistic(self, node_idx: np.ndarray, current: np.ndarray) -> np.ndarray:
        """Batched Szekely-Rizzo energy distance between the two windows.

        Matches :func:`repro.core.energy.energy_distance_arrays` operation
        for operation; the frozen start window's within-sample mean is
        cached per node between change points.
        """
        w = self._window_size
        start = self._start_win[node_idx]

        missing = ~self._within_start_ok[node_idx]
        if np.any(missing):
            miss_nodes = node_idx[missing]
            self._within_start[miss_nodes] = _batched_mean_pairwise(
                start[missing], start[missing]
            )
            self._within_start_ok[miss_nodes] = True
        within_start = self._within_start[node_idx]

        cross = _batched_mean_pairwise(start, current)
        within_current = _batched_mean_pairwise(current, current)
        scale = (w * w) / (w + w)
        return np.maximum(0.0, scale * (2.0 * cross - within_start - within_current))


# ----------------------------------------------------------------------
# Array helpers (operation-order-compatible with the scalar core)
# ----------------------------------------------------------------------
def _clamp_error_array(values: np.ndarray) -> np.ndarray:
    """Vectorized ``vivaldi._clamp_error``: NaN -> max, then clip."""
    return np.where(
        np.isnan(values),
        MAX_ERROR_ESTIMATE,
        np.clip(values, MIN_ERROR_ESTIMATE, MAX_ERROR_ESTIMATE),
    )


def _euclidean_from_delta(delta: np.ndarray) -> np.ndarray:
    """Row-wise Euclidean norm, accumulating dimensions sequentially.

    ``Coordinate.euclidean_distance`` sums squared differences left to
    right; an explicit accumulation reproduces that order exactly (NumPy's
    pairwise ``sum`` could associate differently for wide coordinates).
    """
    acc = delta[:, 0] * delta[:, 0]
    for j in range(1, delta.shape[1]):
        acc = acc + delta[:, j] * delta[:, j]
    return np.sqrt(acc)


def _euclidean_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return _euclidean_from_delta(a - b)


def _ordered_ring(ring: np.ndarray, counts: np.ndarray, window: int) -> np.ndarray:
    """Materialise ring buffers as oldest-to-newest windows ``(m, w, d)``.

    Only called for full windows (``counts >= window``).
    """
    offsets = (counts[:, None] - window + np.arange(window)[None, :]) % window
    rows = np.arange(ring.shape[0])[:, None]
    return ring[rows, offsets]


def _window_centroid(windows: np.ndarray) -> np.ndarray:
    """Centroid of full ``(m, w, d)`` windows, summed in window order."""
    acc = windows[:, 0, :].copy()
    for j in range(1, windows.shape[1]):
        acc = acc + windows[:, j, :]
    return acc / float(windows.shape[1])


def _ring_centroid(ring: np.ndarray, counts: np.ndarray, window: int) -> np.ndarray:
    """Centroid of possibly part-full ring buffers, in insertion order."""
    length = np.minimum(counts, window)
    start = np.where(counts > window, counts % window, 0)
    acc = np.zeros((ring.shape[0], ring.shape[2]))
    for j in range(window):
        valid = j < length
        position = (start + j) % window
        rows = np.arange(ring.shape[0])
        contribution = np.where(
            valid[:, None], ring[rows, position], 0.0
        )
        acc = acc + contribution
    return acc / length[:, None].astype(np.float64)


def _batched_mean_pairwise(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batched ``energy._mean_pairwise_numpy`` over ``(m, w, d)`` windows.

    The per-node computation reduces exactly like the scalar helper: the
    squared differences are summed over the (innermost, contiguous)
    dimension axis and the ``w**2`` distances of each node are averaged as
    one contiguous row, matching ``.mean()`` over a ``(w, w)`` matrix.
    """
    m, w, _ = a.shape
    diff = a[:, :, None, :] - b[:, None, :, :]
    distances = np.sqrt((diff * diff).sum(axis=-1))
    return distances.reshape(m, w * w).mean(axis=1)
