"""Two-window change detection over coordinate streams (Section V-A).

The scheme follows Kifer, Ben-David and Gehrke ("Detecting Change in Data
Streams", VLDB 2004): a single stream ``S = {s_0, s_1, ...}`` is split into
two sets,

* ``W_s`` -- the *start* window: the first ``k`` elements observed since the
  last change point; frozen once full.
* ``W_c`` -- the *current* window: the most recent ``k`` elements; slides
  with every arrival once full.

With each new element the two windows are compared with a two-sample test
(the paper uses the energy statistic for multi-dimensional coordinates, or a
rank-sum test for scalars).  When the test declares the windows different, a
*change point* has occurred: both windows are cleared and the process starts
over.

:class:`ChangeDetectionWindows` implements the bookkeeping; the statistical
test itself is supplied by the caller (the heuristics in
:mod:`repro.core.heuristics`), keeping this module free of policy.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterable, List, TypeVar

__all__ = ["ChangeDetectionWindows"]

T = TypeVar("T")


class ChangeDetectionWindows(Generic[T]):
    """Maintain the start window ``W_s`` and sliding current window ``W_c``.

    Parameters
    ----------
    window_size:
        ``k``, the size both windows grow to.  The paper explores
        ``k`` from 4 to 4096 and settles on 32 as a conservative choice
        (Figure 9).
    """

    __slots__ = ("window_size", "_start", "_current", "_observations_since_reset")

    def __init__(self, window_size: int) -> None:
        if window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {window_size}")
        self.window_size = window_size
        self._start: List[T] = []
        self._current: Deque[T] = deque(maxlen=window_size)
        self._observations_since_reset = 0

    # ------------------------------------------------------------------
    # Stream ingestion
    # ------------------------------------------------------------------
    def add(self, element: T) -> None:
        """Append one stream element to the windows.

        Until both windows are full the element goes into both (they share a
        prefix, exactly as in Kifer et al.); afterwards only ``W_c`` slides.
        """
        if len(self._start) < self.window_size:
            self._start.append(element)
        self._current.append(element)
        self._observations_since_reset += 1

    def extend(self, elements: Iterable[T]) -> None:
        """Append several stream elements in order."""
        for element in elements:
            self.add(element)

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """True once both windows hold ``window_size`` elements.

        The comparison test is only meaningful when the windows no longer
        share elements, i.e. after at least ``2 * window_size`` arrivals.
        """
        return self._observations_since_reset >= 2 * self.window_size

    @property
    def start_window(self) -> List[T]:
        """A copy of ``W_s`` (frozen once full)."""
        return list(self._start)

    @property
    def current_window(self) -> List[T]:
        """A copy of ``W_c`` (the most recent ``window_size`` elements)."""
        return list(self._current)

    @property
    def observations_since_reset(self) -> int:
        """Stream elements consumed since the last change point."""
        return self._observations_since_reset

    # ------------------------------------------------------------------
    # Change points
    # ------------------------------------------------------------------
    def declare_change_point(self) -> None:
        """Reset both windows after a detected change (Section V-A)."""
        self._start.clear()
        self._current.clear()
        self._observations_since_reset = 0

    def reset(self) -> None:
        """Alias for :meth:`declare_change_point` (full state reset)."""
        self.declare_change_point()

    def __len__(self) -> int:
        return self._observations_since_reset

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ChangeDetectionWindows(k={self.window_size}, "
            f"start={len(self._start)}, current={len(self._current)})"
        )
