"""Euclidean coordinate algebra for network coordinates.

The paper embeds hosts in a low-dimensional Euclidean metric space (three
dimensions in all reported experiments).  Vivaldi can optionally augment the
space with a *height* term that models the latency of a host's access link
(Dabek et al., SIGCOMM 2004): the distance between hosts ``i`` and ``j``
becomes ``||x_i - x_j|| + h_i + h_j``.  The paper itself uses a pure metric
space, but the abstraction here supports both so the height ablation can be
run.

:class:`Coordinate` is an immutable value object.  All arithmetic returns a
new instance; this keeps history windows (Section V-A) trivially correct
because stored coordinates can never be mutated in place.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Union

__all__ = ["Coordinate", "centroid"]

_Number = Union[int, float]


def _as_tuple(values: Iterable[_Number]) -> tuple[float, ...]:
    return tuple(float(v) for v in values)


@dataclass(frozen=True, slots=True)
class Coordinate:
    """A point in the Vivaldi coordinate space.

    Parameters
    ----------
    components:
        The Euclidean components, in milliseconds.  The space is
        dimensionless in principle, but because coordinate distance predicts
        round-trip latency the natural unit is milliseconds.
    height:
        Optional non-negative height term (milliseconds).  ``0.0`` yields a
        pure metric space, matching the paper's configuration.
    """

    components: tuple[float, ...]
    height: float = 0.0

    def __init__(self, components: Iterable[_Number], height: _Number = 0.0) -> None:
        object.__setattr__(self, "components", _as_tuple(components))
        object.__setattr__(self, "height", float(height))
        if not self.components:
            raise ValueError("a coordinate needs at least one dimension")
        if self.height < 0.0:
            raise ValueError(f"height must be non-negative, got {self.height}")
        for value in self.components:
            if not math.isfinite(value):
                raise ValueError(f"coordinate components must be finite, got {value}")
        if not math.isfinite(self.height):
            raise ValueError(f"height must be finite, got {self.height}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def origin(cls, dimensions: int, *, height: float = 0.0) -> "Coordinate":
        """Return the origin of a ``dimensions``-dimensional space."""
        if dimensions < 1:
            raise ValueError(f"dimensions must be >= 1, got {dimensions}")
        return cls((0.0,) * dimensions, height)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dimensions(self) -> int:
        """Number of Euclidean dimensions (excluding the height term)."""
        return len(self.components)

    def magnitude(self) -> float:
        """Euclidean norm of the component vector (ignores height)."""
        return math.sqrt(sum(c * c for c in self.components))

    def is_origin(self) -> bool:
        """True when every component (and the height) is exactly zero."""
        return self.height == 0.0 and all(c == 0.0 for c in self.components)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "Coordinate") -> None:
        if self.dimensions != other.dimensions:
            raise ValueError(
                "coordinate dimensionality mismatch: "
                f"{self.dimensions} vs {other.dimensions}"
            )

    def __add__(self, other: "Coordinate") -> "Coordinate":
        self._check_compatible(other)
        return Coordinate(
            (a + b for a, b in zip(self.components, other.components)),
            max(0.0, self.height + other.height),
        )

    def __sub__(self, other: "Coordinate") -> "Coordinate":
        self._check_compatible(other)
        return Coordinate(
            (a - b for a, b in zip(self.components, other.components)),
            max(0.0, self.height - other.height),
        )

    def scale(self, factor: float) -> "Coordinate":
        """Return this coordinate scaled by ``factor`` (height included)."""
        return Coordinate(
            (c * factor for c in self.components),
            max(0.0, self.height * factor),
        )

    def displaced(self, direction: "Coordinate", magnitude: float) -> "Coordinate":
        """Move ``magnitude`` milliseconds along ``direction`` (a unit vector)."""
        self._check_compatible(direction)
        return Coordinate(
            (a + magnitude * b for a, b in zip(self.components, direction.components)),
            self.height,
        )

    def with_height(self, height: float) -> "Coordinate":
        """Return a copy with the height replaced."""
        return Coordinate(self.components, height)

    # ------------------------------------------------------------------
    # Metric
    # ------------------------------------------------------------------
    def euclidean_distance(self, other: "Coordinate") -> float:
        """Plain Euclidean distance between component vectors.

        Squares are spelled ``d * d`` rather than ``d ** 2``: libm's
        ``pow`` is not guaranteed correctly rounded for exponent 2 on
        every platform, while IEEE multiplication is -- and the array
        implementations this class is the oracle for (the vectorized
        backend, the dense index) square by multiplication, so anything
        else would leak one-ulp divergences into the byte-identity
        contracts.
        """
        self._check_compatible(other)
        return math.sqrt(
            sum((a - b) * (a - b) for a, b in zip(self.components, other.components))
        )

    def distance(self, other: "Coordinate") -> float:
        """Predicted round-trip latency: ``||x_i - x_j|| + h_i + h_j``."""
        return self.euclidean_distance(other) + self.height + other.height

    def unit_vector_toward(
        self, other: "Coordinate", rng_direction: Sequence[float] | None = None
    ) -> "Coordinate":
        """Unit vector pointing from ``other`` toward ``self``.

        Vivaldi's update (Figure 1, line 6) needs the unit vector
        ``u(x_i - x_j)``.  When two coordinates coincide (e.g. both are still
        at the origin during bootstrap) the direction is undefined; the
        original implementation picks a random direction.  Callers supply
        ``rng_direction`` for that case so this module stays free of global
        randomness.
        """
        self._check_compatible(other)
        delta = tuple(a - b for a, b in zip(self.components, other.components))
        norm = math.sqrt(sum(d * d for d in delta))
        if norm > 0.0:
            return Coordinate((d / norm for d in delta), 0.0)
        if rng_direction is None:
            # Deterministic fallback: push along the first axis.
            fallback = [0.0] * self.dimensions
            fallback[0] = 1.0
            return Coordinate(fallback, 0.0)
        if len(rng_direction) != self.dimensions:
            raise ValueError(
                "rng_direction must have the same dimensionality as the coordinate"
            )
        norm = math.sqrt(sum(d * d for d in rng_direction))
        if norm == 0.0:
            raise ValueError("rng_direction must be a non-zero vector")
        return Coordinate((d / norm for d in rng_direction), 0.0)

    # ------------------------------------------------------------------
    # Conversion helpers
    # ------------------------------------------------------------------
    def as_list(self) -> list[float]:
        """Components as a mutable list (height excluded)."""
        return list(self.components)

    def __iter__(self):
        return iter(self.components)

    def __len__(self) -> int:
        return len(self.components)

    def __getitem__(self, index: int) -> float:
        return self.components[index]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        comps = ", ".join(f"{c:.2f}" for c in self.components)
        if self.height:
            return f"Coordinate(({comps}), h={self.height:.2f})"
        return f"Coordinate(({comps}))"


def centroid(coordinates: Sequence[Coordinate]) -> Coordinate:
    """Arithmetic mean of a non-empty collection of coordinates.

    Used by the RELATIVE and ENERGY heuristics (Section V-B), which set the
    application coordinate to the centroid of the current window ``W_c``.
    Heights are averaged as well.
    """
    if not coordinates:
        raise ValueError("cannot take the centroid of an empty collection")
    dims = coordinates[0].dimensions
    sums = [0.0] * dims
    height_sum = 0.0
    for coord in coordinates:
        if coord.dimensions != dims:
            raise ValueError("all coordinates must share the same dimensionality")
        for i, value in enumerate(coord.components):
            sums[i] += value
        height_sum += coord.height
    n = float(len(coordinates))
    return Coordinate((s / n for s in sums), height_sum / n)
