"""Configuration dataclasses and presets for the coordinate subsystem.

A :class:`NodeConfig` bundles the three policy choices a deployment makes:

* the Vivaldi constants (:class:`~repro.core.vivaldi.VivaldiConfig`),
* the per-link latency filter (:class:`FilterConfig`),
* the application-level update heuristic (:class:`HeuristicConfig`).

Named presets cover the configurations the paper evaluates, so experiment
code reads like the paper ("raw", "mp", "mp_energy", ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping

from repro.core.filters import LatencyFilter, make_filter
from repro.core.heuristics import UpdateHeuristic, make_heuristic
from repro.core.vivaldi import VivaldiConfig

__all__ = ["FilterConfig", "HeuristicConfig", "NodeConfig", "PRESETS"]


@dataclass(frozen=True, slots=True)
class FilterConfig:
    """Which per-link filter to apply and with which parameters."""

    kind: str = "mp"
    params: Mapping[str, Any] = field(default_factory=dict)

    def build(self) -> LatencyFilter:
        """Construct one filter instance (one per link is created by the bank)."""
        return make_filter(self.kind, **dict(self.params))

    def with_params(self, **params: Any) -> "FilterConfig":
        merged = dict(self.params)
        merged.update(params)
        return FilterConfig(self.kind, merged)


@dataclass(frozen=True, slots=True)
class HeuristicConfig:
    """Which application-update heuristic to use and with which parameters."""

    kind: str = "always"
    params: Mapping[str, Any] = field(default_factory=dict)

    def build(self) -> UpdateHeuristic:
        return make_heuristic(self.kind, **dict(self.params))

    def with_params(self, **params: Any) -> "HeuristicConfig":
        merged = dict(self.params)
        merged.update(params)
        return HeuristicConfig(self.kind, merged)


@dataclass(frozen=True, slots=True)
class NodeConfig:
    """Complete configuration of one node's coordinate subsystem."""

    vivaldi: VivaldiConfig = field(default_factory=VivaldiConfig)
    filter: FilterConfig = field(default_factory=FilterConfig)
    heuristic: HeuristicConfig = field(default_factory=HeuristicConfig)

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def preset(cls, name: str, **overrides: Any) -> "NodeConfig":
        """Return a named preset configuration.

        Available presets (matching the paper's evaluated configurations):

        ``raw``
            No filter, application coordinate tracks the system coordinate.
        ``raw_energy``
            No filter, ENERGY application updates ("Energy+No Filter").
        ``mp``
            MP(4, 25) filter, application tracks system ("Raw MP Filter").
        ``mp_energy``
            MP filter + ENERGY(window=32, tau=8) -- the deployed system.
        ``mp_relative``
            MP filter + RELATIVE(window=32, eps_r=0.3).
        ``mp_system`` / ``mp_application`` / ``mp_application_centroid``
            MP filter + the respective windowless heuristic (tau=16).
        ``cluster_confidence``
            No filter, 3 ms confidence-building margin (the Figure 6 setup).

        Keyword overrides replace top-level fields, e.g.
        ``NodeConfig.preset("mp_energy", vivaldi=VivaldiConfig(dimensions=2))``.
        """
        try:
            config = PRESETS[name]
        except KeyError:
            known = ", ".join(sorted(PRESETS))
            raise ValueError(f"unknown preset {name!r}; expected one of: {known}") from None
        if overrides:
            config = replace(config, **overrides)
        return config

    def describe(self) -> Dict[str, Any]:
        """Flat dictionary describing this configuration (for reports)."""
        return {
            "dimensions": self.vivaldi.dimensions,
            "cc": self.vivaldi.cc,
            "ce": self.vivaldi.ce,
            "error_margin_ms": self.vivaldi.error_margin_ms,
            "filter": self.filter.kind,
            "filter_params": dict(self.filter.params),
            "heuristic": self.heuristic.kind,
            "heuristic_params": dict(self.heuristic.params),
        }


PRESETS: Dict[str, NodeConfig] = {
    "raw": NodeConfig(
        filter=FilterConfig("none"),
        heuristic=HeuristicConfig("always"),
    ),
    "raw_energy": NodeConfig(
        filter=FilterConfig("none"),
        heuristic=HeuristicConfig("energy", {"threshold": 8.0, "window_size": 32}),
    ),
    "mp": NodeConfig(
        filter=FilterConfig("mp", {"history": 4, "percentile": 25.0}),
        heuristic=HeuristicConfig("always"),
    ),
    "mp_energy": NodeConfig(
        filter=FilterConfig("mp", {"history": 4, "percentile": 25.0}),
        heuristic=HeuristicConfig("energy", {"threshold": 8.0, "window_size": 32}),
    ),
    "mp_relative": NodeConfig(
        filter=FilterConfig("mp", {"history": 4, "percentile": 25.0}),
        heuristic=HeuristicConfig(
            "relative", {"relative_threshold": 0.3, "window_size": 32}
        ),
    ),
    "mp_system": NodeConfig(
        filter=FilterConfig("mp", {"history": 4, "percentile": 25.0}),
        heuristic=HeuristicConfig("system", {"threshold_ms": 16.0}),
    ),
    "mp_application": NodeConfig(
        filter=FilterConfig("mp", {"history": 4, "percentile": 25.0}),
        heuristic=HeuristicConfig("application", {"threshold_ms": 16.0}),
    ),
    "mp_application_centroid": NodeConfig(
        filter=FilterConfig("mp", {"history": 4, "percentile": 25.0}),
        heuristic=HeuristicConfig(
            "application_centroid", {"threshold_ms": 16.0, "window_size": 32}
        ),
    ),
    "cluster_confidence": NodeConfig(
        vivaldi=VivaldiConfig(error_margin_ms=3.0),
        filter=FilterConfig("none"),
        heuristic=HeuristicConfig("always"),
    ),
}
