"""The complete per-host coordinate subsystem.

:class:`CoordinateNode` wires together the three mechanisms the paper
studies:

1. a per-link latency filter (:mod:`repro.core.filters`) turning the raw
   observation stream into Vivaldi inputs;
2. the Vivaldi update rule (:mod:`repro.core.vivaldi`) maintaining the
   *system-level* coordinate ``c_s``;
3. an application-update heuristic (:mod:`repro.core.heuristics`)
   maintaining the *application-level* coordinate ``c_a``.

The node also tracks the coordinates of peers it has heard from, which the
RELATIVE heuristic uses to learn its approximate nearest neighbor and which
the overlay substrate uses for coordinate-based queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.config import NodeConfig
from repro.core.coordinate import Coordinate
from repro.core.filters import FilterBank
from repro.core.heuristics import UpdateHeuristic
from repro.core.vivaldi import VivaldiState, vivaldi_update

__all__ = ["CoordinateNode", "ObservationResult"]


@dataclass(frozen=True, slots=True)
class ObservationResult:
    """What happened when one raw latency sample was processed."""

    #: Raw sample as observed on the wire (milliseconds).
    raw_rtt_ms: float
    #: Output of the per-link filter, or ``None`` if the filter is warming up.
    filtered_rtt_ms: Optional[float]
    #: System coordinate after the (possible) Vivaldi update.
    system_coordinate: Coordinate
    #: Displacement of the system coordinate caused by this observation.
    system_movement_ms: float
    #: New application coordinate if the heuristic fired, else ``None``.
    application_update: Optional[Coordinate]
    #: Relative error of the raw observation against the *system* coordinates
    #: (the paper's accuracy metric: ``| ||x_i - x_j|| - l_ij | / l_ij`` with
    #: ``l_ij`` the raw observed latency).
    relative_error: Optional[float]
    #: Relative error of the raw observation against the *application*
    #: coordinates (``eps_a`` in Section V-B).
    application_relative_error: Optional[float]


class CoordinateNode:
    """One participant in the coordinate system.

    Parameters
    ----------
    node_id:
        A unique identifier (any string; the simulator uses host names).
    config:
        Policy configuration; see :class:`repro.core.config.NodeConfig`.
    """

    __slots__ = (
        "node_id",
        "config",
        "_state",
        "_filters",
        "_heuristic",
        "_peer_coordinates",
        "_observation_count",
        "_cumulative_system_movement_ms",
    )

    def __init__(self, node_id: str, config: NodeConfig | None = None) -> None:
        self.node_id = node_id
        self.config = config or NodeConfig()
        self._state = VivaldiState.initial(self.config.vivaldi)
        self._filters = FilterBank(self.config.filter.kind, **dict(self.config.filter.params))
        self._heuristic: UpdateHeuristic = self.config.heuristic.build()
        self._peer_coordinates: Dict[str, Coordinate] = {}
        self._observation_count = 0
        self._cumulative_system_movement_ms = 0.0

    # ------------------------------------------------------------------
    # State accessors
    # ------------------------------------------------------------------
    @property
    def system_coordinate(self) -> Coordinate:
        """The continuously evolving system-level coordinate ``c_s``."""
        return self._state.coordinate

    @property
    def application_coordinate(self) -> Coordinate:
        """The application-level coordinate ``c_a``.

        Before the heuristic has produced any update this falls back to the
        system coordinate (a brand-new node has nothing better to report).
        """
        app = self._heuristic.application_coordinate
        return app if app is not None else self._state.coordinate

    @property
    def error_estimate(self) -> float:
        """Vivaldi's error estimate ``w_i`` (lower is more confident)."""
        return self._state.error_estimate

    @property
    def confidence(self) -> float:
        """Human-friendly confidence in ``[0, 1]``."""
        return self._state.confidence

    @property
    def vivaldi_state(self) -> VivaldiState:
        return self._state

    @property
    def observation_count(self) -> int:
        """Raw latency samples processed (whether or not they reached Vivaldi)."""
        return self._observation_count

    @property
    def application_update_count(self) -> int:
        """Number of times the application coordinate changed."""
        return self._heuristic.update_count

    @property
    def cumulative_system_movement_ms(self) -> float:
        """Total distance the system coordinate has travelled."""
        return self._cumulative_system_movement_ms

    @property
    def known_peers(self) -> Sequence[str]:
        return list(self._peer_coordinates)

    def peer_coordinate(self, peer_id: str) -> Optional[Coordinate]:
        """Last coordinate heard from ``peer_id``, if any."""
        return self._peer_coordinates.get(peer_id)

    # ------------------------------------------------------------------
    # Core operation
    # ------------------------------------------------------------------
    def observe(
        self,
        peer_id: str,
        peer_coordinate: Coordinate,
        peer_error: float,
        rtt_ms: float,
        *,
        peer_application_coordinate: Optional[Coordinate] = None,
        random_direction: Sequence[float] | None = None,
    ) -> ObservationResult:
        """Process one raw latency observation of ``peer_id``.

        The raw sample is passed through the per-link filter; if the filter
        emits a value, Vivaldi updates the system coordinate and the
        heuristic decides whether the application coordinate changes.

        ``peer_application_coordinate`` is the peer's application-level
        coordinate as carried in the response message (the deployed system
        outputs both ``c_s`` and ``c_a`` with every sample); it is only used
        for the application-level error metric and falls back to the peer's
        system coordinate when absent.

        Both reported relative errors are computed against the *raw*
        observation ``rtt_ms``: the filter shapes what Vivaldi consumes,
        but accuracy is always judged against what the network actually
        delivered, as in the paper.
        """
        self._observation_count += 1
        self._peer_coordinates[peer_id] = peer_coordinate

        previous_coordinate = self._state.coordinate
        filtered = self._filters.update(peer_id, rtt_ms)
        raw = max(float(rtt_ms), 1e-3)

        application_update: Optional[Coordinate] = None
        relative_error: Optional[float] = None
        movement = 0.0

        if filtered is not None:
            self._state = vivaldi_update(
                self._state,
                peer_coordinate,
                peer_error,
                filtered,
                self.config.vivaldi,
                random_direction=random_direction,
            )
            movement = previous_coordinate.euclidean_distance(self._state.coordinate)
            self._cumulative_system_movement_ms += movement
            relative_error = (
                abs(self._state.coordinate.distance(peer_coordinate) - raw) / raw
            )
            application_update = self._heuristic.observe(
                self._state.coordinate,
                nearest_neighbor=self._nearest_neighbor_coordinate(),
            )

        application_relative_error: Optional[float] = None
        if filtered is not None:
            peer_app = (
                peer_application_coordinate
                if peer_application_coordinate is not None
                else peer_coordinate
            )
            application_relative_error = (
                abs(self.application_coordinate.distance(peer_app) - raw) / raw
            )

        return ObservationResult(
            raw_rtt_ms=float(rtt_ms),
            filtered_rtt_ms=filtered,
            system_coordinate=self._state.coordinate,
            system_movement_ms=movement,
            application_update=application_update,
            relative_error=relative_error,
            application_relative_error=application_relative_error,
        )

    # ------------------------------------------------------------------
    # Peer management
    # ------------------------------------------------------------------
    def forget_peer(self, peer_id: str) -> None:
        """Drop all per-peer state (filter history and last coordinate)."""
        self._filters.forget(peer_id)
        self._peer_coordinates.pop(peer_id, None)

    def estimate_latency(self, peer_id: str) -> Optional[float]:
        """Predicted RTT to ``peer_id`` from application-level coordinates."""
        peer = self._peer_coordinates.get(peer_id)
        if peer is None:
            return None
        return self.application_coordinate.distance(peer)

    def estimate_latency_to(self, coordinate: Coordinate) -> float:
        """Predicted RTT to an arbitrary coordinate (application-level view)."""
        return self.application_coordinate.distance(coordinate)

    def _nearest_neighbor_coordinate(self) -> Optional[Coordinate]:
        """Coordinate of the closest known peer (used by RELATIVE)."""
        best: Optional[Coordinate] = None
        best_distance = float("inf")
        own = self._state.coordinate
        for peer_coordinate in self._peer_coordinates.values():
            distance = own.euclidean_distance(peer_coordinate)
            if distance < best_distance:
                best_distance = distance
                best = peer_coordinate
        return best

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return to the bootstrap state (origin coordinate, no history)."""
        self._state = VivaldiState.initial(self.config.vivaldi)
        self._filters.reset()
        self._heuristic.reset()
        self._peer_coordinates.clear()
        self._observation_count = 0
        self._cumulative_system_movement_ms = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CoordinateNode({self.node_id!r}, filter={self.config.filter.kind}, "
            f"heuristic={self.config.heuristic.kind}, "
            f"observations={self._observation_count})"
        )
