"""The Vivaldi update rule (Figure 1 of the paper) with confidence building.

Vivaldi models the network as a collection of springs pulling on each node's
coordinate.  Each node ``i`` keeps a coordinate ``x_i`` and a confidence
``w_i`` in ``(0, 1)``.  On every latency observation of a remote node ``j``
(its coordinate ``x_j``, its confidence ``w_j``, and an observed RTT
``l_ij``) the node runs:

.. code-block:: text

    w_s   = w_i / (w_i + w_j)                       # observation weight
    eps   = | ||x_i - x_j|| - l_ij | / l_ij         # relative error
    alpha = c_e * w_s
    w_i   = alpha * eps + (1 - alpha) * w_i         # confidence EWMA
    delta = c_c * w_s
    x_i   = x_i + delta * (||x_i - x_j|| - l_ij) * u(x_i - x_j)

Note on the confidence convention: the paper stores ``w_i`` so that *lower*
values mean *more* confidence (it is an error estimate -- the EWMA tracks
relative error).  Figure 6, however, plots "confidence" rising towards 1.0.
We follow the algorithm literally and store the error-like quantity in
:attr:`VivaldiState.error_estimate`; :attr:`VivaldiState.confidence` exposes
the human-friendly ``1 - error`` view (clamped to ``[0, 1]``) that Figure 6
reports.

*Confidence building* (Section IV-B) adds a measurement-error margin: when
the predicted and observed latency differ by less than the margin they are
treated as equal, so sub-millisecond jitter on a local cluster does not
erode confidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.core.coordinate import Coordinate

__all__ = ["VivaldiConfig", "VivaldiState", "vivaldi_update"]

#: Smallest RTT (in milliseconds) accepted by the update rule.  Zero or
#: negative observations are physically meaningless and would divide by zero
#: in the relative-error computation.
MIN_LATENCY_MS = 1e-3

#: Error estimates are clamped to this range; the paper forces the
#: confidence to remain in bounds after each update ("not shown" in Fig 1).
MAX_ERROR_ESTIMATE = 1.0
MIN_ERROR_ESTIMATE = 0.0


@dataclass(frozen=True, slots=True)
class VivaldiConfig:
    """Tuning constants for the Vivaldi update rule.

    ``cc`` and ``ce`` bound how much a single observation can move the
    coordinate and the confidence respectively.  The paper (and the original
    p2psim simulator) uses 0.25 for both and reports that any value in
    [0.05, 0.25] behaves similarly at large scale.
    """

    dimensions: int = 3
    cc: float = 0.25
    ce: float = 0.25
    use_height: bool = False
    #: Confidence-building margin in milliseconds (Section IV-B).  The paper
    #: uses 3 ms on its local cluster and notes the margin has little effect
    #: on wide-area accuracy.  ``0.0`` disables confidence building.
    error_margin_ms: float = 0.0
    #: Initial value of the error estimate (w_i).  New nodes are maximally
    #: uncertain.
    initial_error: float = 1.0

    def __post_init__(self) -> None:
        if self.dimensions < 1:
            raise ValueError(f"dimensions must be >= 1, got {self.dimensions}")
        if not 0.0 < self.cc <= 1.0:
            raise ValueError(f"cc must be in (0, 1], got {self.cc}")
        if not 0.0 < self.ce <= 1.0:
            raise ValueError(f"ce must be in (0, 1], got {self.ce}")
        if self.error_margin_ms < 0.0:
            raise ValueError("error_margin_ms must be non-negative")
        if not MIN_ERROR_ESTIMATE <= self.initial_error <= MAX_ERROR_ESTIMATE:
            raise ValueError("initial_error must be within [0, 1]")


@dataclass(frozen=True, slots=True)
class VivaldiState:
    """A node's Vivaldi state: its coordinate and its error estimate."""

    coordinate: Coordinate
    error_estimate: float
    update_count: int = 0

    @classmethod
    def initial(cls, config: VivaldiConfig) -> "VivaldiState":
        """State of a freshly booted node: origin coordinate, maximal error."""
        return cls(
            coordinate=Coordinate.origin(config.dimensions),
            error_estimate=config.initial_error,
            update_count=0,
        )

    @property
    def confidence(self) -> float:
        """Human-friendly confidence in ``[0, 1]`` (1 = fully confident)."""
        return max(0.0, min(1.0, 1.0 - self.error_estimate))


def _clamp_error(value: float) -> float:
    if math.isnan(value):
        return MAX_ERROR_ESTIMATE
    return max(MIN_ERROR_ESTIMATE, min(MAX_ERROR_ESTIMATE, value))


def vivaldi_update(
    state: VivaldiState,
    remote_coordinate: Coordinate,
    remote_error: float,
    rtt_ms: float,
    config: VivaldiConfig,
    *,
    random_direction: Sequence[float] | None = None,
) -> VivaldiState:
    """Apply one Vivaldi observation and return the updated state.

    Parameters
    ----------
    state:
        The local node's current Vivaldi state.
    remote_coordinate, remote_error:
        The sampled peer's coordinate ``x_j`` and error estimate ``w_j`` as
        reported in the ping response.
    rtt_ms:
        The (possibly filtered) latency observation ``l_ij`` in milliseconds.
    config:
        Algorithm constants.
    random_direction:
        Direction to use when the two coordinates coincide (bootstrap); a
        deterministic axis-aligned push is used when omitted.

    Returns
    -------
    VivaldiState
        The new immutable state.  The caller decides whether to adopt it as
        the system-level coordinate.
    """
    if rtt_ms != rtt_ms or rtt_ms in (float("inf"), float("-inf")):
        raise ValueError(f"rtt_ms must be finite, got {rtt_ms}")
    rtt_ms = max(float(rtt_ms), MIN_LATENCY_MS)
    remote_error = _clamp_error(float(remote_error))
    local_error = _clamp_error(state.error_estimate)

    # Line 1: balance of confidence between the two endpoints.  A node whose
    # error estimate is large (unconfident) defers to a confident peer.
    total_error = local_error + remote_error
    if total_error <= 0.0:
        # Both nodes claim perfect confidence; split the influence evenly.
        observation_weight = 0.5
    else:
        observation_weight = local_error / total_error

    predicted = state.coordinate.distance(remote_coordinate)
    measured = rtt_ms

    # Confidence building (Section IV-B): within the measurement-error
    # margin, the prediction is considered exact.
    if config.error_margin_ms > 0.0 and abs(predicted - measured) <= config.error_margin_ms:
        measured_for_error = predicted if predicted > 0.0 else measured
    else:
        measured_for_error = measured

    # Line 2: relative error of this observation.
    relative_error = abs(predicted - measured_for_error) / max(measured_for_error, MIN_LATENCY_MS)

    # Lines 3-4: adaptive EWMA over the error estimate.
    alpha = config.ce * observation_weight
    new_error = _clamp_error(alpha * relative_error + (1.0 - alpha) * local_error)

    # Lines 5-6: spring relaxation of the coordinate.
    delta = config.cc * observation_weight
    direction = state.coordinate.unit_vector_toward(
        remote_coordinate, rng_direction=random_direction
    )
    # Spring force proportional to the prediction error, applied along the
    # unit vector u(x_i - x_j): when the measured RTT exceeds the predicted
    # distance the nodes are too close in the space and i moves away from j;
    # when the prediction is too large, i moves toward j.  (This is the
    # Dabek et al. sign convention; the paper's Figure 1 writes the factor
    # as (||x_i - x_j|| - l_ij), which with the same unit vector would push
    # nodes the wrong way -- a well-known typo in the pseudocode.)
    displacement = delta * (measured - state.coordinate.euclidean_distance(remote_coordinate))
    new_coordinate = state.coordinate.displaced(direction, displacement)

    if config.use_height:
        # Height adapts like the scalar spring in Dabek et al.: it absorbs
        # the residual error not explained by the Euclidean part.
        residual = measured - new_coordinate.euclidean_distance(remote_coordinate)
        height_target = max(0.0, (residual - remote_coordinate.height))
        new_height = max(
            0.0,
            state.coordinate.height + delta * (height_target - state.coordinate.height),
        )
        new_coordinate = new_coordinate.with_height(new_height)

    return VivaldiState(
        coordinate=new_coordinate,
        error_estimate=new_error,
        update_count=state.update_count + 1,
    )
