"""Per-link latency filters (Section III, IV and IV-B of the paper).

In a live deployment each link yields a *stream* of latency observations
whose values vary by up to three orders of magnitude.  Feeding raw samples
into Vivaldi periodically distorts the whole coordinate space.  The paper's
fix is a per-link non-linear low-pass filter: the **Moving Percentile (MP)
filter**, which outputs a low percentile (``p = 25``) of a short sliding
history (``h = 4``) of recent observations.

Also implemented, because the paper evaluates them as alternatives
(Section IV-B / Table I):

* :class:`NoFilter` -- pass raw observations straight through.
* :class:`ThresholdFilter` -- drop samples above a fixed cut-off.
* :class:`EWMAFilter` -- exponentially-weighted moving average.
* :class:`MedianFilter` -- a Moving Median, the special case ``p = 50``.

Every filter implements the :class:`LatencyFilter` protocol; each link gets
its own filter instance, which :class:`FilterBank` manages per peer.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Protocol, runtime_checkable

__all__ = [
    "LatencyFilter",
    "MovingPercentileFilter",
    "MedianFilter",
    "EWMAFilter",
    "ThresholdFilter",
    "NoFilter",
    "FilterBank",
    "make_filter",
    "percentile_of",
]


def percentile_of(values: Iterable[float], percentile: float) -> float:
    """Return the ``percentile``-th percentile of ``values``.

    Uses linear interpolation between closest ranks (the same convention as
    ``numpy.percentile`` with the default ``linear`` method), so that the
    25th percentile of a 4-sample history lands on the lower quartile the
    paper calls the "minimum with a history of four".
    """
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot take a percentile of an empty collection")
    if not 0.0 <= percentile <= 100.0:
        raise ValueError(f"percentile must be within [0, 100], got {percentile}")
    if len(data) == 1:
        return data[0]
    rank = (percentile / 100.0) * (len(data) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return data[int(rank)]
    weight = rank - lower
    return data[lower] * (1.0 - weight) + data[upper] * weight


@runtime_checkable
class LatencyFilter(Protocol):
    """A per-link filter turning raw latency samples into Vivaldi inputs.

    ``update`` consumes one raw observation (milliseconds) and returns the
    filtered value to feed Vivaldi, or ``None`` if the filter is still
    warming up and no value should be emitted yet (the Section VI fix for
    the pathological first-sample case).
    """

    def update(self, sample_ms: float) -> float | None:
        """Consume a raw sample; return the filtered latency or ``None``."""
        ...

    def current(self) -> float | None:
        """Return the filter's current output without consuming a sample."""
        ...

    def reset(self) -> None:
        """Discard all state."""
        ...


def _validate_sample(sample_ms: float) -> float:
    value = float(sample_ms)
    if not math.isfinite(value) or value < 0.0:
        raise ValueError(f"latency samples must be finite and non-negative, got {sample_ms}")
    return value


class MovingPercentileFilter:
    """The paper's Moving Percentile (MP) filter.

    Parameters
    ----------
    history:
        Size ``h`` of the per-link sliding window of raw observations.
        The paper finds ``h = 4`` minimises prediction error (Figure 4).
    percentile:
        Percentile ``p`` of the window returned as the prediction.  The
        paper uses ``p = 25``; with ``h = 4`` this is effectively the
        window minimum.
    warmup:
        Number of samples that must arrive before the filter emits output.
        The paper's deployed filter emits from the first sample
        (``warmup = 1``), which it identifies as the source of its worst
        disruptions; ``warmup = 2`` implements the suggested fix of waiting
        for a second sample.
    """

    __slots__ = ("history", "percentile", "warmup", "_window")

    def __init__(self, history: int = 4, percentile: float = 25.0, warmup: int = 1) -> None:
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        if not 0.0 <= percentile <= 100.0:
            raise ValueError(f"percentile must be within [0, 100], got {percentile}")
        if warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {warmup}")
        if warmup > history:
            raise ValueError("warmup cannot exceed the history size")
        self.history = history
        self.percentile = percentile
        self.warmup = warmup
        self._window: Deque[float] = deque(maxlen=history)

    def update(self, sample_ms: float) -> float | None:
        self._window.append(_validate_sample(sample_ms))
        if len(self._window) < self.warmup:
            return None
        return percentile_of(self._window, self.percentile)

    def current(self) -> float | None:
        if len(self._window) < self.warmup:
            return None
        return percentile_of(self._window, self.percentile)

    def reset(self) -> None:
        self._window.clear()

    @property
    def samples_seen(self) -> int:
        """Number of samples currently retained (capped at ``history``)."""
        return len(self._window)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"MovingPercentileFilter(h={self.history}, p={self.percentile})"


class MedianFilter(MovingPercentileFilter):
    """Moving Median filter: the MP filter with ``p = 50``."""

    __slots__ = ()

    def __init__(self, history: int = 4, warmup: int = 1) -> None:
        super().__init__(history=history, percentile=50.0, warmup=warmup)


class EWMAFilter:
    """Exponentially-weighted moving average filter (Table I baseline).

    ``v_{t+1} = alpha * s + (1 - alpha) * v_t``.  The paper shows that even
    an unconventionally small ``alpha`` (0.02) yields *worse* accuracy than
    no filter at all, because heavy-tailed outliers are not a trend an EWMA
    should track -- they should simply be discarded.
    """

    __slots__ = ("alpha", "_value")

    def __init__(self, alpha: float = 0.10) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: float | None = None

    def update(self, sample_ms: float) -> float | None:
        sample = _validate_sample(sample_ms)
        if self._value is None:
            self._value = sample
        else:
            self._value = self.alpha * sample + (1.0 - self.alpha) * self._value
        return self._value

    def current(self) -> float | None:
        return self._value

    def reset(self) -> None:
        self._value = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"EWMAFilter(alpha={self.alpha})"


class ThresholdFilter:
    """Drop observations above a fixed cut-off (Section IV-B baseline).

    Stateless apart from remembering the last accepted sample so
    :meth:`current` has something to report.  The paper notes that a single
    global threshold cannot adapt to per-link tails (a cut-off suitable for
    inter-continental links does nothing for a 100 ms link's outliers) and
    finds only minimal improvement from thresholds in isolation.
    """

    __slots__ = ("threshold_ms", "_last_accepted")

    def __init__(self, threshold_ms: float = 1000.0) -> None:
        if threshold_ms <= 0.0:
            raise ValueError(f"threshold_ms must be positive, got {threshold_ms}")
        self.threshold_ms = threshold_ms
        self._last_accepted: float | None = None

    def update(self, sample_ms: float) -> float | None:
        sample = _validate_sample(sample_ms)
        if sample > self.threshold_ms:
            return None
        self._last_accepted = sample
        return sample

    def current(self) -> float | None:
        return self._last_accepted

    def reset(self) -> None:
        self._last_accepted = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ThresholdFilter(threshold_ms={self.threshold_ms})"


class NoFilter:
    """Identity filter: raw observations go straight to Vivaldi."""

    __slots__ = ("_last",)

    def __init__(self) -> None:
        self._last: float | None = None

    def update(self, sample_ms: float) -> float | None:
        self._last = _validate_sample(sample_ms)
        return self._last

    def current(self) -> float | None:
        return self._last

    def reset(self) -> None:
        self._last = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "NoFilter()"


#: Registry used by :func:`make_filter` and the configuration presets.
_FILTER_KINDS = {
    "mp": MovingPercentileFilter,
    "moving_percentile": MovingPercentileFilter,
    "median": MedianFilter,
    "ewma": EWMAFilter,
    "threshold": ThresholdFilter,
    "none": NoFilter,
    "raw": NoFilter,
}


def make_filter(kind: str, **kwargs: object) -> LatencyFilter:
    """Instantiate a filter by name.

    ``kind`` is one of ``mp``, ``median``, ``ewma``, ``threshold``,
    ``none``/``raw``.  Keyword arguments are passed to the constructor.
    """
    try:
        factory = _FILTER_KINDS[kind.lower()]
    except KeyError:
        known = ", ".join(sorted(set(_FILTER_KINDS)))
        raise ValueError(f"unknown filter kind {kind!r}; expected one of: {known}") from None
    return factory(**kwargs)  # type: ignore[arg-type]


class FilterBank:
    """Per-peer filter instances for one node.

    Each link (pair of nodes) maintains its own filter state, so the bank
    lazily creates a fresh filter the first time a peer is observed.
    """

    __slots__ = ("_kind", "_kwargs", "_filters")

    def __init__(self, kind: str = "mp", **filter_kwargs: object) -> None:
        self._kind = kind
        self._kwargs = dict(filter_kwargs)
        self._filters: Dict[str, LatencyFilter] = {}

    def filter_for(self, peer_id: str) -> LatencyFilter:
        """Return (creating if necessary) the filter for ``peer_id``."""
        existing = self._filters.get(peer_id)
        if existing is None:
            existing = make_filter(self._kind, **self._kwargs)
            self._filters[peer_id] = existing
        return existing

    def update(self, peer_id: str, sample_ms: float) -> float | None:
        """Feed ``sample_ms`` through the peer's filter and return its output."""
        return self.filter_for(peer_id).update(sample_ms)

    def forget(self, peer_id: str) -> None:
        """Drop the filter state for a departed peer."""
        self._filters.pop(peer_id, None)

    def reset(self) -> None:
        """Drop all per-peer state."""
        self._filters.clear()

    @property
    def peer_count(self) -> int:
        return len(self._filters)

    def peers(self) -> list[str]:
        return list(self._filters)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"FilterBank(kind={self._kind!r}, peers={len(self._filters)})"
