"""The motivating application substrate: coordinate-driven overlay services.

The paper's authors built network coordinates for a stream-based overlay
network where a coordinate change can "initiate a cascade of events,
culminating in one or more heavyweight process migrations".  This package
implements that class of application so the cost of coordinate instability
can be measured end-to-end:

* :mod:`repro.overlay.knn` -- coordinate-based (approximate) k-nearest-
  neighbor queries.
* :mod:`repro.overlay.placement` -- operator placement for stream
  processing: choose the node minimising predicted latency to a set of
  producers and consumers, and migrate when coordinates say a better
  placement exists.
* :mod:`repro.overlay.triggers` -- accounting of the application-level work
  (re-evaluations, migrations) triggered by coordinate updates.
"""

from __future__ import annotations

from repro.overlay.knn import CoordinateIndex
from repro.overlay.placement import OperatorPlacement, PlacementDecision
from repro.overlay.triggers import MigrationCost, UpdateTriggerAccountant

__all__ = [
    "CoordinateIndex",
    "MigrationCost",
    "OperatorPlacement",
    "PlacementDecision",
    "UpdateTriggerAccountant",
]
