"""Coordinate-based nearest-neighbor queries.

Once nodes have coordinates, "who is closest to X" becomes a geometric
query instead of a measurement campaign.  :class:`CoordinateIndex` is a
small in-memory index over the application-level coordinates of a set of
nodes supporting k-nearest-neighbor, range and minimum-cost-host queries.
A linear scan is used: the systems in the paper have hundreds of nodes,
where a scan is both faster and simpler than a spatial tree.

At query-service scale the scan is the bottleneck, so this class doubles
as the *pluggable query contract*: the sub-linear spatial implementations
in :mod:`repro.service.index` subclass it, inherit the maintenance API,
and override the query methods.  The linear scan stays the correctness
oracle -- any implementation must return exactly what this class returns,
including ordering (ties are broken by insertion order, matching the
stable sort over the insertion-ordered backing dict).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.coordinate import Coordinate

__all__ = ["CoordinateIndex"]


class CoordinateIndex:
    """An updatable index of node coordinates supporting proximity queries."""

    def __init__(self) -> None:
        self._coordinates: Dict[str, Coordinate] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def update(self, node_id: str, coordinate: Coordinate) -> None:
        """Insert or refresh a node's coordinate."""
        self._coordinates[node_id] = coordinate

    def update_many(self, coordinates: Dict[str, Coordinate]) -> None:
        for node_id, coordinate in coordinates.items():
            self.update(node_id, coordinate)

    def remove(self, node_id: str) -> None:
        self._coordinates.pop(node_id, None)

    def __len__(self) -> int:
        return len(self._coordinates)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._coordinates

    def coordinate_of(self, node_id: str) -> Optional[Coordinate]:
        return self._coordinates.get(node_id)

    def node_ids(self) -> List[str]:
        return list(self._coordinates)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nearest(
        self,
        target: Coordinate,
        k: int = 1,
        *,
        exclude: Iterable[str] = (),
    ) -> List[Tuple[str, float]]:
        """The ``k`` nodes closest to ``target``: (node_id, predicted RTT)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        excluded = set(exclude)
        candidates = [
            (node_id, target.distance(coordinate))
            for node_id, coordinate in self._coordinates.items()
            if node_id not in excluded
        ]
        candidates.sort(key=lambda pair: pair[1])
        return candidates[:k]

    def nearest_to_node(self, node_id: str, k: int = 1) -> List[Tuple[str, float]]:
        """The ``k`` nodes closest to an indexed node (excluding itself)."""
        coordinate = self._coordinates.get(node_id)
        if coordinate is None:
            raise KeyError(f"{node_id!r} is not in the index")
        return self.nearest(coordinate, k, exclude=[node_id])

    def within(self, target: Coordinate, radius_ms: float) -> List[Tuple[str, float]]:
        """All nodes with predicted RTT to ``target`` at most ``radius_ms``."""
        if radius_ms < 0.0:
            raise ValueError("radius_ms must be non-negative")
        hits = [
            (node_id, distance)
            for node_id, coordinate in self._coordinates.items()
            if (distance := target.distance(coordinate)) <= radius_ms
        ]
        hits.sort(key=lambda pair: pair[1])
        return hits

    def min_cost_host(self, endpoints: Sequence[Coordinate]) -> Tuple[str, float]:
        """The indexed node minimising total predicted RTT to ``endpoints``.

        This is the 1-median query behind operator placement: the returned
        host minimises ``sum(host.distance(e) for e in endpoints)``.  Ties
        are broken toward the earliest-inserted host (the first strict
        minimum encountered in insertion order), which spatial subclasses
        must reproduce exactly.
        """
        if not endpoints:
            raise ValueError("min_cost_host needs at least one endpoint")
        best_host: Optional[str] = None
        best_cost = float("inf")
        for node_id, coordinate in self._coordinates.items():
            cost = sum(coordinate.distance(endpoint) for endpoint in endpoints)
            if cost < best_cost:
                best_cost = cost
                best_host = node_id
        if best_host is None:
            raise ValueError("cannot run min_cost_host on an empty index")
        return best_host, best_cost
