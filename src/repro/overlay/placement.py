"""Coordinate-driven operator placement for a stream-processing overlay.

This is the application that motivated the paper: operators of a streaming
query should run on hosts that minimise network latency between producers
and consumers.  Placement decisions are driven entirely by network
coordinates; when a node's coordinate changes, the placement is
re-evaluated and the operator may migrate -- a "heavyweight" action whose
frequency is exactly the cost of coordinate instability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.coordinate import Coordinate, centroid
from repro.overlay.knn import CoordinateIndex

__all__ = ["PlacementDecision", "OperatorPlacement"]


@dataclass(frozen=True, slots=True)
class PlacementDecision:
    """Outcome of one placement evaluation."""

    operator_id: str
    chosen_host: str
    predicted_cost_ms: float
    previous_host: Optional[str]
    migrated: bool


class OperatorPlacement:
    """Places stream operators onto hosts using network coordinates.

    Parameters
    ----------
    index:
        The coordinate index of candidate hosts (typically fed with
        application-level coordinates).  Any :class:`CoordinateIndex`
        implementation works; the spatial indexes in
        :mod:`repro.service.index` answer the placement query sub-linearly
        with results identical to the linear scan.
    migration_hysteresis_ms:
        A new host must beat the current placement's predicted cost by at
        least this margin before a migration is triggered.  ``0`` migrates
        on any improvement, maximising sensitivity to coordinate noise.
    """

    def __init__(self, index: CoordinateIndex, *, migration_hysteresis_ms: float = 0.0) -> None:
        if migration_hysteresis_ms < 0.0:
            raise ValueError("migration_hysteresis_ms must be non-negative")
        self.index = index
        self.migration_hysteresis_ms = migration_hysteresis_ms
        self._placements: Dict[str, str] = {}
        self._endpoints: Dict[str, List[str]] = {}
        self._migrations = 0
        self._evaluations = 0

    # ------------------------------------------------------------------
    # Operator management
    # ------------------------------------------------------------------
    @property
    def migrations(self) -> int:
        """Total migrations performed across all operators."""
        return self._migrations

    @property
    def evaluations(self) -> int:
        """Total placement evaluations performed."""
        return self._evaluations

    def current_host(self, operator_id: str) -> Optional[str]:
        return self._placements.get(operator_id)

    def register_operator(self, operator_id: str, endpoint_hosts: Sequence[str]) -> None:
        """Declare an operator and the producer/consumer hosts it connects."""
        if not endpoint_hosts:
            raise ValueError("an operator needs at least one endpoint host")
        self._endpoints[operator_id] = list(endpoint_hosts)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _placement_cost(self, host_coordinate: Coordinate, endpoints: Sequence[Coordinate]) -> float:
        """Total predicted RTT between the host and every endpoint."""
        return sum(host_coordinate.distance(endpoint) for endpoint in endpoints)

    def evaluate(self, operator_id: str) -> PlacementDecision:
        """Re-evaluate one operator's placement against current coordinates."""
        if operator_id not in self._endpoints:
            raise KeyError(f"operator {operator_id!r} is not registered")
        self._evaluations += 1
        endpoint_ids = self._endpoints[operator_id]
        endpoint_coordinates = [
            coordinate
            for endpoint in endpoint_ids
            if (coordinate := self.index.coordinate_of(endpoint)) is not None
        ]
        if not endpoint_coordinates:
            raise ValueError(
                f"none of the endpoints of {operator_id!r} have known coordinates"
            )

        # Delegated to the index so spatial implementations can answer the
        # 1-median query sub-linearly; the linear base class reproduces the
        # historical first-strict-minimum scan exactly.
        best_host, best_cost = self.index.min_cost_host(endpoint_coordinates)

        previous = self._placements.get(operator_id)
        migrated = False
        if previous is None:
            self._placements[operator_id] = best_host
        elif best_host != previous:
            previous_coordinate = self.index.coordinate_of(previous)
            previous_cost = (
                self._placement_cost(previous_coordinate, endpoint_coordinates)
                if previous_coordinate is not None
                else float("inf")
            )
            if previous_cost - best_cost > self.migration_hysteresis_ms:
                self._placements[operator_id] = best_host
                self._migrations += 1
                migrated = True
            else:
                best_host = previous
                best_cost = previous_cost
        return PlacementDecision(
            operator_id=operator_id,
            chosen_host=self._placements[operator_id],
            predicted_cost_ms=best_cost,
            previous_host=previous,
            migrated=migrated,
        )

    def evaluate_all(self) -> List[PlacementDecision]:
        """Re-evaluate every registered operator (e.g. after coordinate updates)."""
        return [self.evaluate(operator_id) for operator_id in self._endpoints]

    def ideal_meeting_point(self, operator_id: str) -> Coordinate:
        """The centroid of the operator's endpoints (the latency-optimal point)."""
        endpoints = [
            coordinate
            for endpoint in self._endpoints[operator_id]
            if (coordinate := self.index.coordinate_of(endpoint)) is not None
        ]
        if not endpoints:
            raise ValueError(f"no endpoint coordinates known for {operator_id!r}")
        return centroid(endpoints)
