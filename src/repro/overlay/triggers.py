"""Accounting of application work triggered by coordinate updates.

The paper's core argument for application-level coordinates is economic:
every coordinate update an application reacts to has a cost (re-running a
placement optimiser, migrating a process).  :class:`UpdateTriggerAccountant`
measures that cost for a run, so experiments can report "how much
application work did each configuration cause" alongside the accuracy and
stability metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.coordinate import Coordinate

__all__ = ["MigrationCost", "UpdateTriggerAccountant"]


@dataclass(frozen=True, slots=True)
class MigrationCost:
    """Cost model for the application work triggered by an update."""

    #: Cost of re-evaluating placement after any coordinate update (cheap).
    evaluation_cost: float = 1.0
    #: Cost of an actual migration (heavyweight; dominates).
    migration_cost: float = 100.0
    #: Coordinate movement (ms) below which a migration is never triggered.
    migration_threshold_ms: float = 10.0

    def __post_init__(self) -> None:
        if self.evaluation_cost < 0.0 or self.migration_cost < 0.0:
            raise ValueError("costs must be non-negative")
        if self.migration_threshold_ms < 0.0:
            raise ValueError("migration_threshold_ms must be non-negative")


class UpdateTriggerAccountant:
    """Tracks coordinate updates per node and the application work they imply."""

    def __init__(self, cost_model: MigrationCost | None = None) -> None:
        self.cost_model = cost_model or MigrationCost()
        self._last_coordinate: Dict[str, Coordinate] = {}
        self._updates: Dict[str, int] = {}
        self._migrations: Dict[str, int] = {}
        self._total_cost = 0.0
        self._events: List[Tuple[float, str, float]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_update(self, time_s: float, node_id: str, coordinate: Coordinate) -> float:
        """Record one application-coordinate update; returns its cost."""
        previous = self._last_coordinate.get(node_id)
        self._last_coordinate[node_id] = coordinate
        self._updates[node_id] = self._updates.get(node_id, 0) + 1

        cost = self.cost_model.evaluation_cost
        if previous is not None:
            movement = previous.euclidean_distance(coordinate)
            if movement > self.cost_model.migration_threshold_ms:
                cost += self.cost_model.migration_cost
                self._migrations[node_id] = self._migrations.get(node_id, 0) + 1
        self._total_cost += cost
        self._events.append((time_s, node_id, cost))
        return cost

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def total_cost(self) -> float:
        """Total application work across all nodes."""
        return self._total_cost

    def update_count(self, node_id: Optional[str] = None) -> int:
        if node_id is not None:
            return self._updates.get(node_id, 0)
        return sum(self._updates.values())

    def migration_count(self, node_id: Optional[str] = None) -> int:
        if node_id is not None:
            return self._migrations.get(node_id, 0)
        return sum(self._migrations.values())

    def cost_per_node(self) -> Dict[str, float]:
        costs: Dict[str, float] = {}
        for _, node_id, cost in self._events:
            costs[node_id] = costs.get(node_id, 0.0) + cost
        return costs

    def events(self) -> List[Tuple[float, str, float]]:
        """(time_s, node_id, cost) for every recorded update."""
        return list(self._events)

    def cost_rate(self, duration_s: float) -> float:
        """Application work per second over a run of ``duration_s``."""
        if duration_s <= 0.0:
            raise ValueError("duration_s must be positive")
        return self._total_cost / duration_s
