"""Accounting of application work triggered by coordinate updates.

The paper's core argument for application-level coordinates is economic:
every coordinate update an application reacts to has a cost (re-running a
placement optimiser, migrating a process).  :class:`UpdateTriggerAccountant`
measures that cost for a run, so experiments can report "how much
application work did each configuration cause" alongside the accuracy and
stability metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.coordinate import Coordinate
from repro.overlay.knn import CoordinateIndex

__all__ = ["MigrationCost", "UpdateTriggerAccountant"]


@dataclass(frozen=True, slots=True)
class MigrationCost:
    """Cost model for the application work triggered by an update."""

    #: Cost of re-evaluating placement after any coordinate update (cheap).
    evaluation_cost: float = 1.0
    #: Cost of an actual migration (heavyweight; dominates).
    migration_cost: float = 100.0
    #: Coordinate movement (ms) below which a migration is never triggered.
    migration_threshold_ms: float = 10.0

    def __post_init__(self) -> None:
        if self.evaluation_cost < 0.0 or self.migration_cost < 0.0:
            raise ValueError("costs must be non-negative")
        if self.migration_threshold_ms < 0.0:
            raise ValueError("migration_threshold_ms must be non-negative")


class UpdateTriggerAccountant:
    """Tracks coordinate updates per node and the application work they imply.

    The per-node "last seen coordinate" state lives in a pluggable
    :class:`~repro.overlay.knn.CoordinateIndex` rather than a bare dict, so
    the accountant can also answer proximity questions about the nodes it
    tracks ("which nodes migrated near X?").  The linear default is the
    right choice for the usual record-heavy access pattern: every update
    marks a spatial index dirty, so a sub-linear index from
    :mod:`repro.service.index` only pays off when updates arrive in bulk
    *before* a query-heavy phase (one rebuild amortised over many queries).
    """

    def __init__(
        self,
        cost_model: MigrationCost | None = None,
        *,
        index: CoordinateIndex | None = None,
    ) -> None:
        self.cost_model = cost_model or MigrationCost()
        self.index = index if index is not None else CoordinateIndex()
        self._updates: Dict[str, int] = {}
        self._migrations: Dict[str, int] = {}
        self._total_cost = 0.0
        self._events: List[Tuple[float, str, float]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_update(self, time_s: float, node_id: str, coordinate: Coordinate) -> float:
        """Record one application-coordinate update; returns its cost."""
        previous = self.index.coordinate_of(node_id)
        self.index.update(node_id, coordinate)
        self._updates[node_id] = self._updates.get(node_id, 0) + 1

        cost = self.cost_model.evaluation_cost
        if previous is not None:
            movement = previous.euclidean_distance(coordinate)
            if movement > self.cost_model.migration_threshold_ms:
                cost += self.cost_model.migration_cost
                self._migrations[node_id] = self._migrations.get(node_id, 0) + 1
        self._total_cost += cost
        self._events.append((time_s, node_id, cost))
        return cost

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def total_cost(self) -> float:
        """Total application work across all nodes."""
        return self._total_cost

    def update_count(self, node_id: Optional[str] = None) -> int:
        if node_id is not None:
            return self._updates.get(node_id, 0)
        return sum(self._updates.values())

    def migration_count(self, node_id: Optional[str] = None) -> int:
        if node_id is not None:
            return self._migrations.get(node_id, 0)
        return sum(self._migrations.values())

    def cost_per_node(self) -> Dict[str, float]:
        costs: Dict[str, float] = {}
        for _, node_id, cost in self._events:
            costs[node_id] = costs.get(node_id, 0.0) + cost
        return costs

    def events(self) -> List[Tuple[float, str, float]]:
        """(time_s, node_id, cost) for every recorded update."""
        return list(self._events)

    def nodes_near(self, coordinate: Coordinate, k: int = 1) -> List[Tuple[str, float]]:
        """The ``k`` tracked nodes currently closest to ``coordinate``."""
        return self.index.nearest(coordinate, k)

    def cost_rate(self, duration_s: float) -> float:
        """Application work per second over a run of ``duration_s``."""
        if duration_s <= 0.0:
            raise ValueError("duration_s must be positive")
        return self._total_cost / duration_s
