"""Baseline and related-work comparison implementations.

* :mod:`repro.baselines.static_matrix` -- the original Vivaldi evaluation
  methodology: every link is a single fixed scalar, so the algorithm sees a
  perfectly repeatable input (the idealisation whose breakdown under real
  conditions motivates the paper).
* :mod:`repro.baselines.launois` -- de Launois, Uhlig and Bonaventure's
  alternative stabiliser: an asymptotically decaying weight on every new
  measurement, which stabilises coordinates but stops adapting to network
  changes (discussed in the paper's related work).
* :mod:`repro.baselines.landmark` -- a simple GNP-style landmark embedding
  for context: fixed landmarks position themselves, other nodes
  triangulate against them.
"""

from __future__ import annotations

from repro.baselines.landmark import LandmarkEmbedding
from repro.baselines.launois import LaunoisVivaldiNode
from repro.baselines.static_matrix import StaticMatrixExperiment

__all__ = ["LandmarkEmbedding", "LaunoisVivaldiNode", "StaticMatrixExperiment"]
