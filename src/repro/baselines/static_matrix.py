"""Original-style Vivaldi evaluation on a static latency matrix.

Prior work (including the original Vivaldi papers) evaluated coordinate
algorithms by fixing each link to a single scalar latency and repeatedly
feeding those fixed values to the algorithm.  Under that idealisation
Vivaldi converges to low error and essentially stops moving.  The paper's
point is that this setting never occurs in deployments; reproducing it here
provides the "it works great in the lab" contrast for the experiments and a
convergence sanity check for our Vivaldi implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import NodeConfig
from repro.core.node import CoordinateNode
from repro.latency.matrix import LatencyMatrix
from repro.metrics.accuracy import relative_error
from repro.stats.sampling import derive_rng

__all__ = ["StaticMatrixExperiment", "StaticMatrixResult"]


@dataclass(frozen=True, slots=True)
class StaticMatrixResult:
    """Error statistics of an embedding built from a static matrix."""

    rounds: int
    median_relative_error: float
    p95_relative_error: float
    mean_relative_error: float


class StaticMatrixExperiment:
    """Run Vivaldi to convergence against a fixed latency matrix."""

    def __init__(
        self,
        matrix: LatencyMatrix,
        config: NodeConfig | None = None,
        *,
        seed: int = 0,
    ) -> None:
        self.matrix = matrix
        self.config = config or NodeConfig.preset("raw")
        self.seed = seed
        self.nodes: Dict[str, CoordinateNode] = {
            node_id: CoordinateNode(node_id, self.config) for node_id in matrix.node_ids
        }
        self._rng = derive_rng(seed, "static-matrix")
        self._rounds = 0

    @property
    def rounds(self) -> int:
        return self._rounds

    def run_round(self) -> None:
        """One round: every node samples one random peer with the fixed RTT."""
        node_ids = self.matrix.node_ids
        for node_id in node_ids:
            peer_index = int(self._rng.integers(0, len(node_ids)))
            peer_id = node_ids[peer_index]
            if peer_id == node_id:
                continue
            node = self.nodes[node_id]
            peer = self.nodes[peer_id]
            node.observe(
                peer_id,
                peer.system_coordinate,
                peer.error_estimate,
                self.matrix.rtt_ms(node_id, peer_id),
            )
        self._rounds += 1

    def run(self, rounds: int) -> StaticMatrixResult:
        """Run ``rounds`` sampling rounds and report embedding error."""
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        for _ in range(rounds):
            self.run_round()
        return self.evaluate()

    def evaluate(self, pair_sample: Optional[int] = 20_000) -> StaticMatrixResult:
        """Relative error of the current embedding over (a sample of) all pairs."""
        errors: List[float] = []
        pairs = list(self.matrix.pairs())
        if pair_sample is not None and len(pairs) > pair_sample:
            indices = self._rng.choice(len(pairs), size=pair_sample, replace=False)
            pairs = [pairs[int(i)] for i in indices]
        for a, b, rtt in pairs:
            if rtt <= 0.0:
                continue
            predicted = self.nodes[a].system_coordinate.distance(
                self.nodes[b].system_coordinate
            )
            errors.append(relative_error(predicted, rtt))
        if not errors:
            raise ValueError("the matrix has no positive-latency pairs to evaluate")
        data = np.asarray(errors)
        return StaticMatrixResult(
            rounds=self._rounds,
            median_relative_error=float(np.percentile(data, 50.0)),
            p95_relative_error=float(np.percentile(data, 95.0)),
            mean_relative_error=float(data.mean()),
        )
