"""A simple GNP-style landmark embedding.

Ng and Zhang's Global Network Positioning (discussed in the paper's related
work) builds coordinates in two stages: a small set of well-known landmarks
position themselves by minimising pairwise embedding error, and every other
node then positions itself against the landmarks' fixed coordinates.  The
approach is centralised and does not evolve smoothly, which is why the
paper builds on Vivaldi instead -- but it is a useful accuracy yardstick.

The optimisation uses coordinate-wise stochastic descent (Nelder-Mead-free
so SciPy stays optional), which is plenty for the small landmark counts
(5-20) the scheme uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.coordinate import Coordinate
from repro.latency.matrix import LatencyMatrix
from repro.metrics.accuracy import relative_error
from repro.stats.sampling import derive_rng

__all__ = ["LandmarkEmbedding"]


def _embedding_error(
    position: np.ndarray, anchors: np.ndarray, target_rtts: np.ndarray
) -> float:
    """Sum of squared relative errors of ``position`` against the anchors."""
    distances = np.sqrt(((anchors - position) ** 2).sum(axis=1))
    safe = np.maximum(target_rtts, 1e-3)
    return float((((distances - target_rtts) / safe) ** 2).sum())


def _minimise(
    initial: np.ndarray,
    anchors: np.ndarray,
    target_rtts: np.ndarray,
    rng: np.random.Generator,
    *,
    iterations: int = 400,
) -> np.ndarray:
    """Simple simulated-annealing-style local search in the embedding space."""
    best = initial.copy()
    best_error = _embedding_error(best, anchors, target_rtts)
    scale = max(1.0, float(target_rtts.mean()))
    for iteration in range(iterations):
        step_scale = scale * (1.0 - iteration / iterations) * 0.25 + 0.5
        candidate = best + rng.normal(0.0, step_scale, size=best.shape)
        error = _embedding_error(candidate, anchors, target_rtts)
        if error < best_error:
            best = candidate
            best_error = error
    return best


class LandmarkEmbedding:
    """Two-stage landmark (GNP-style) embedding of a latency matrix."""

    def __init__(
        self,
        matrix: LatencyMatrix,
        *,
        landmark_count: int = 8,
        dimensions: int = 3,
        seed: int = 0,
    ) -> None:
        if landmark_count < dimensions + 1:
            raise ValueError(
                "at least dimensions + 1 landmarks are needed for a stable embedding"
            )
        if landmark_count > matrix.size:
            raise ValueError("cannot use more landmarks than there are nodes")
        self.matrix = matrix
        self.landmark_count = landmark_count
        self.dimensions = dimensions
        self.seed = seed
        self._coordinates: Dict[str, Coordinate] = {}
        self._landmarks: List[str] = []

    @property
    def landmarks(self) -> List[str]:
        return list(self._landmarks)

    def coordinate_of(self, node_id: str) -> Optional[Coordinate]:
        return self._coordinates.get(node_id)

    # ------------------------------------------------------------------
    # Embedding
    # ------------------------------------------------------------------
    def fit(self) -> Dict[str, Coordinate]:
        """Compute coordinates for every node; returns the full mapping."""
        rng = derive_rng(self.seed, "landmark")
        node_ids = self.matrix.node_ids
        landmark_indices = rng.choice(len(node_ids), size=self.landmark_count, replace=False)
        self._landmarks = [node_ids[int(i)] for i in sorted(landmark_indices)]

        # Stage 1: embed the landmarks against each other, one at a time,
        # sweeping a few times so later landmarks influence earlier ones.
        positions = {
            lm: rng.normal(0.0, 50.0, size=self.dimensions) for lm in self._landmarks
        }
        for _ in range(4):
            for landmark in self._landmarks:
                others = [lm for lm in self._landmarks if lm != landmark]
                anchors = np.array([positions[lm] for lm in others])
                rtts = np.array([self.matrix.rtt_ms(landmark, lm) for lm in others])
                positions[landmark] = _minimise(positions[landmark], anchors, rtts, rng)

        # Stage 2: every remaining node triangulates against the fixed landmarks.
        anchor_matrix = np.array([positions[lm] for lm in self._landmarks])
        for node_id in node_ids:
            if node_id in positions:
                continue
            rtts = np.array([self.matrix.rtt_ms(node_id, lm) for lm in self._landmarks])
            initial = anchor_matrix.mean(axis=0) + rng.normal(0.0, 10.0, size=self.dimensions)
            positions[node_id] = _minimise(initial, anchor_matrix, rtts, rng)

        self._coordinates = {
            node_id: Coordinate(position.tolist()) for node_id, position in positions.items()
        }
        return dict(self._coordinates)

    def evaluate(self, pair_sample: Optional[int] = 20_000) -> Dict[str, float]:
        """Relative-error summary of the embedding over (a sample of) pairs."""
        if not self._coordinates:
            raise RuntimeError("call fit() before evaluate()")
        rng = derive_rng(self.seed, "landmark-eval")
        pairs = list(self.matrix.pairs())
        if pair_sample is not None and len(pairs) > pair_sample:
            indices = rng.choice(len(pairs), size=pair_sample, replace=False)
            pairs = [pairs[int(i)] for i in indices]
        errors = []
        for a, b, rtt in pairs:
            if rtt <= 0.0:
                continue
            predicted = self._coordinates[a].distance(self._coordinates[b])
            errors.append(relative_error(predicted, rtt))
        data = np.asarray(errors)
        return {
            "median_relative_error": float(np.percentile(data, 50.0)),
            "p95_relative_error": float(np.percentile(data, 95.0)),
            "mean_relative_error": float(data.mean()),
        }
