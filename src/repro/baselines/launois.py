"""The de Launois et al. asymptotic-damping Vivaldi variant.

de Launois, Uhlig and Bonaventure ("A Stable and Distributed Network
Coordinate System", 2004) stabilise Vivaldi by multiplying the pull of each
new measurement with a factor that decays asymptotically with the number of
observations, regardless of the measurement's source or quality.  The paper
discusses this in related work and points out the flaw: as the damping
factor approaches zero the algorithm stops adapting to genuine network
changes.

:class:`LaunoisVivaldiNode` implements the variant so the trade-off can be
demonstrated experimentally (see ``benchmarks/bench_ablation_baselines.py``):
it is very stable on a stationary network and goes stale after a route
change, whereas the MP-filter approach keeps adapting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coordinate import Coordinate
from repro.core.vivaldi import VivaldiConfig, VivaldiState, vivaldi_update

__all__ = ["LaunoisConfig", "LaunoisVivaldiNode"]


@dataclass(frozen=True, slots=True)
class LaunoisConfig:
    """Parameters of the damping schedule.

    The damping factor applied to observation ``n`` is
    ``decay_constant / (decay_constant + n)``, which starts near 1 and
    decays hyperbolically toward zero.
    """

    vivaldi: VivaldiConfig = VivaldiConfig()
    decay_constant: float = 50.0

    def __post_init__(self) -> None:
        if self.decay_constant <= 0.0:
            raise ValueError("decay_constant must be positive")


class LaunoisVivaldiNode:
    """A Vivaldi node whose updates are asymptotically damped."""

    def __init__(self, node_id: str, config: LaunoisConfig | None = None) -> None:
        self.node_id = node_id
        self.config = config or LaunoisConfig()
        self._state = VivaldiState.initial(self.config.vivaldi)
        self._observations = 0

    @property
    def system_coordinate(self) -> Coordinate:
        return self._state.coordinate

    @property
    def error_estimate(self) -> float:
        return self._state.error_estimate

    @property
    def observation_count(self) -> int:
        return self._observations

    def damping_factor(self) -> float:
        """Current multiplicative damping applied to coordinate movement."""
        c = self.config.decay_constant
        return c / (c + self._observations)

    def observe(
        self,
        peer_id: str,
        peer_coordinate: Coordinate,
        peer_error: float,
        rtt_ms: float,
    ) -> Coordinate:
        """Apply one damped Vivaldi update and return the new coordinate."""
        self._observations += 1
        undamped = vivaldi_update(
            self._state,
            peer_coordinate,
            peer_error,
            rtt_ms,
            self.config.vivaldi,
        )
        damping = self.damping_factor()
        # Interpolate between the old and the undamped new coordinate: the
        # movement proposed by Vivaldi is scaled by the decaying factor.
        delta = undamped.coordinate - self._state.coordinate
        damped_coordinate = self._state.coordinate + delta.scale(damping)
        self._state = VivaldiState(
            coordinate=damped_coordinate,
            error_estimate=undamped.error_estimate,
            update_count=undamped.update_count,
        )
        return self._state.coordinate

    def reset(self) -> None:
        self._state = VivaldiState.initial(self.config.vivaldi)
        self._observations = 0
