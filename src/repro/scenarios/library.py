"""Built-in scenario library: the paper's conditions as declarative specs.

Each entry replaces a bespoke ``fig*`` experiment path with data.  The
equivalence tests in ``tests/test_scenarios.py`` pin the ported scenarios
to their legacy experiment modules: same universe, same configuration,
same numbers.
"""

from __future__ import annotations

from repro.scenarios.registry import scenario
from repro.scenarios.spec import ChurnSpec, NetworkSpec, ScenarioSpec, WorkloadSpec

__all__ = ["FIG13_PRESETS"]

#: The four side-by-side deployment configurations of Figure 13.
FIG13_PRESETS = {
    "raw": "Raw No Filter",
    "raw_energy": "Energy+No Filter",
    "mp": "Raw MP Filter",
    "mp_energy": "Energy+MP Filter",
}


@scenario("fig07-drift")
def _fig07_drift() -> ScenarioSpec:
    """Figure 7: per-region coordinate drift over a changing network."""
    return ScenarioSpec(
        name="fig07-drift",
        description="Coordinates drift consistently as routes shift (Figure 7)",
        mode="replay",
        network=NetworkSpec(nodes=24, shifting_fraction=0.5, drift_fraction_per_hour=0.10),
        preset="mp",
        duration_s=3600.0,
        ping_interval_s=2.0,
        workload=WorkloadSpec(kind="drift", params={"snapshot_interval_s": 60.0}),
        seed=0,
    )


def _fig13_factory(preset: str, label: str):
    def factory() -> ScenarioSpec:
        return ScenarioSpec(
            name=f"fig13-deployment-{preset.replace('_', '-')}",
            description=f"Figure 13 deployment comparison: {label}",
            mode="simulate",
            network=NetworkSpec(nodes=30),
            preset=preset,
            duration_s=3600.0,
            seed=0,
        )

    return factory


for _preset, _label in FIG13_PRESETS.items():
    scenario(f"fig13-deployment-{_preset.replace('_', '-')}")(_fig13_factory(_preset, _label))


def _churn_ablation_factory(warmup: int):
    def factory() -> ScenarioSpec:
        return ScenarioSpec(
            name=f"churn-ablation-warmup{warmup}",
            description=(
                "Protocol simulation under 30% churn with the MP filter's "
                f"warm-up delay set to {warmup} sample(s)"
            ),
            mode="simulate",
            network=NetworkSpec(nodes=20),
            preset=None,
            filter_kind="mp",
            filter_params={"history": 4, "percentile": 25.0, "warmup": warmup},
            heuristic_kind="energy",
            heuristic_params={"threshold": 8.0, "window_size": 32},
            duration_s=1800.0,
            churn=ChurnSpec(churning_fraction=0.3, mean_session_s=400.0, mean_downtime_s=120.0),
            seed=12,
        )

    return factory


for _warmup in (1, 2):
    scenario(f"churn-ablation-warmup{_warmup}")(_churn_ablation_factory(_warmup))


@scenario("planetlab-churn-30pct")
def _planetlab_churn() -> ScenarioSpec:
    """The deployed configuration under 30% node churn."""
    return ScenarioSpec(
        name="planetlab-churn-30pct",
        description="Deployed Energy+MP configuration with 30% of nodes churning",
        mode="simulate",
        network=NetworkSpec(nodes=30),
        preset="mp_energy",
        duration_s=3600.0,
        churn=ChurnSpec(churning_fraction=0.3),
        seed=0,
    )


@scenario("mesh-replay")
def _mesh_replay() -> ScenarioSpec:
    """A plain full-mesh replay sized for engine benchmarking.

    ``bench_engine_scaling.py`` sweeps this scenario's filter parameters
    into a >=500-node grid; it is also a convenient neutral base for ad-hoc
    sweeps (``repro scenarios sweep mesh-replay --set nodes=...``).
    """
    return ScenarioSpec(
        name="mesh-replay",
        description="Full-mesh trace replay with the MP filter (benchmark base)",
        mode="replay",
        network=NetworkSpec(nodes=64),
        preset="mp",
        duration_s=600.0,
        ping_interval_s=2.0,
        seed=0,
    )


@scenario("knn-overlay")
def _knn_overlay() -> ScenarioSpec:
    """Application-level workload: k-nearest-neighbor queries."""
    return ScenarioSpec(
        name="knn-overlay",
        description="kNN queries over application-level coordinates after a replay",
        mode="replay",
        network=NetworkSpec(nodes=24),
        preset="mp_energy",
        duration_s=1200.0,
        workload=WorkloadSpec(kind="knn", params={"k": 3, "queries": 64}),
        seed=0,
    )


@scenario("query-service-mixed")
def _query_service_mixed() -> ScenarioSpec:
    """The coordinate query service under a blended read workload.

    Runs a replay to convergence, snapshots the application coordinates
    into the service layer, and serves a deterministic Zipf-skewed mix of
    knn / nearest / range / pairwise / centroid queries through the
    batching planner on the vp-tree index, with the linear oracle run
    side-by-side for an agreement check.
    """
    return ScenarioSpec(
        name="query-service-mixed",
        description="Snapshot + vp-tree query service serving a mixed read workload",
        mode="replay",
        network=NetworkSpec(nodes=64),
        preset="mp_energy",
        duration_s=900.0,
        workload=WorkloadSpec(
            kind="queries",
            params={"count": 512, "mix": "mixed", "k": 3, "index": "vptree"},
        ),
        seed=0,
    )


@scenario("query-service-knn")
def _query_service_knn() -> ScenarioSpec:
    """The query service under pure k-nearest-neighbor load (grid index)."""
    return ScenarioSpec(
        name="query-service-knn",
        description="Snapshot + grid-index query service serving pure kNN load",
        mode="replay",
        network=NetworkSpec(nodes=64),
        preset="mp_energy",
        duration_s=900.0,
        workload=WorkloadSpec(
            kind="queries",
            params={"count": 512, "mix": "knn", "k": 5, "index": "grid"},
        ),
        seed=0,
    )


@scenario("fig07-vectorized")
def _fig07_vectorized() -> ScenarioSpec:
    """The Figure 7 network universe on the vectorized batch engine.

    Same shifting-link / drifting universe as ``fig07-drift``, but run
    through the synchronous-round NumPy backend at ~10x the node count the
    scalar replay uses -- the drift workload itself needs replay hooks, so
    this entry reports the ping-level stability metrics instead.
    """
    return ScenarioSpec(
        name="fig07-vectorized",
        description="Shifting/drifting universe on the vectorized batch backend",
        mode="simulate",
        network=NetworkSpec(nodes=256, shifting_fraction=0.5, drift_fraction_per_hour=0.10),
        preset="mp",
        duration_s=1800.0,
        backend="vectorized",
        seed=0,
    )


@scenario("churn-vectorized")
def _churn_vectorized() -> ScenarioSpec:
    """The deployed Energy+MP configuration under churn, vectorized."""
    return ScenarioSpec(
        name="churn-vectorized",
        description="Energy+MP under 30% churn on the vectorized batch backend",
        mode="simulate",
        network=NetworkSpec(nodes=256),
        preset="mp_energy",
        duration_s=1800.0,
        churn=ChurnSpec(churning_fraction=0.3, mean_session_s=400.0, mean_downtime_s=120.0),
        backend="vectorized",
        seed=0,
    )


@scenario("stress-10k-vectorized")
def _stress_10k_vectorized() -> ScenarioSpec:
    """A 10,000-node stress run, only feasible on the vectorized backend.

    The scalar write path needs minutes per tick at this scale; the batch
    engine finishes the whole run in seconds.  Kept short so it stays a
    practical smoke test for very large populations.
    """
    return ScenarioSpec(
        name="stress-10k-vectorized",
        description="10k-node synchronous-round stress run (vectorized only)",
        mode="simulate",
        network=NetworkSpec(nodes=10_000),
        preset="mp",
        duration_s=300.0,
        backend="vectorized",
        seed=0,
    )


@scenario("fig07-relative-vectorized")
def _fig07_relative_vectorized() -> ScenarioSpec:
    """The full paper configuration on the batch engine: RELATIVE + height.

    The fig07 shifting/drifting universe with the MP filter, the RELATIVE
    application-update heuristic and height-augmented coordinates -- the
    exact pipeline the paper's headline figures run -- executed on the
    vectorized backend, which previously rejected both RELATIVE and
    heights at spec validation time.
    """
    return ScenarioSpec(
        name="fig07-relative-vectorized",
        description="Paper RELATIVE + height pipeline on the vectorized batch backend",
        mode="simulate",
        network=NetworkSpec(nodes=256, shifting_fraction=0.5, drift_fraction_per_hour=0.10),
        preset="mp_relative",
        use_height=True,
        duration_s=1800.0,
        backend="vectorized",
        seed=0,
    )


@scenario("vectorized-strict-relative")
def _vectorized_strict_relative() -> ScenarioSpec:
    """Strict-equivalence guard for the RELATIVE + height vectorization.

    Long enough (96 ticks) for the two change-detection windows to become
    ready and the locale-scaled trigger to fire, so the nearest-neighbor
    scan and centroid paths are actually exercised against the oracle.
    """
    return ScenarioSpec(
        name="vectorized-strict-relative",
        description="Byte-identical RELATIVE + height equivalence guard",
        mode="simulate",
        network=NetworkSpec(nodes=12),
        preset="mp_relative",
        use_height=True,
        duration_s=480.0,
        backend="vectorized",
        strict_equivalence=True,
        seed=7,
    )


@scenario("query-service-dense")
def _query_service_dense() -> ScenarioSpec:
    """The array-native pipeline end to end: sim -> snapshot -> queries.

    A vectorized simulation publishes its final coordinates through the
    zero-copy array ingest, the ``dense`` index adopts the snapshot
    arrays, and the planner answers the batch through the batched NumPy
    path -- with the object-based linear oracle run side-by-side for the
    agreement check.
    """
    return ScenarioSpec(
        name="query-service-dense",
        description="Zero-copy snapshot + dense batched queries after a vectorized run",
        mode="simulate",
        network=NetworkSpec(nodes=512),
        preset="mp",
        duration_s=600.0,
        backend="vectorized",
        workload=WorkloadSpec(
            kind="queries",
            params={"count": 512, "mix": "mixed", "k": 5, "index": "dense"},
        ),
        seed=0,
    )


@scenario("queries-live-mixed")
def _queries_live_mixed() -> ScenarioSpec:
    """Live serving end to end: sim -> streaming ingest -> daemon -> load.

    A vectorized simulation streams coordinate epochs straight into a
    running sharded daemon (zero-downtime rollover) while a closed-loop
    client keeps querying over the wire; each live response is audited
    against the generation it claims to be served from.  After the final
    epoch a measured workload replays over the wire and is checksummed
    against the single-store linear oracle.
    """
    return ScenarioSpec(
        name="queries-live-mixed",
        description="Sharded daemon serving a mixed workload while epochs stream in",
        mode="simulate",
        network=NetworkSpec(nodes=128),
        preset="mp",
        duration_s=600.0,
        backend="vectorized",
        workload=WorkloadSpec(
            kind="queries-live",
            params={
                "count": 384,
                "live_count": 96,
                "mix": "mixed",
                "k": 3,
                "index": "vptree",
                "shards": 2,
                "publish_every_ticks": 8,
            },
        ),
        seed=0,
    )


def _chaos_live_spec(name: str, description: str, chaos: str) -> ScenarioSpec:
    """A small queries-live universe with a deterministic fault schedule.

    All four chaos scenarios share one shape: 64 nodes on 2 shards, a
    single-worker live stream of 160 queries (faults fire on request
    counts, so ``concurrency=1`` keeps the shed/degrade pattern -- and
    with it every chaos metric -- byte-identical across runs), and a
    measured leg against the healthy store after the faults clear.
    """
    return ScenarioSpec(
        name=name,
        description=description,
        mode="simulate",
        network=NetworkSpec(nodes=64),
        preset="mp",
        duration_s=600.0,
        backend="vectorized",
        workload=WorkloadSpec(
            kind="queries-live",
            params={
                "count": 256,
                "live_count": 160,
                "mix": "mixed",
                "k": 3,
                "index": "vptree",
                "shards": 2,
                "publish_every_ticks": 8,
                "concurrency": 1,
                "chaos": chaos,
            },
        ),
        seed=0,
    )


@scenario("chaos-shard-kill")
def _chaos_shard_kill() -> ScenarioSpec:
    """Kill a shard mid-stream, serve degraded, restart, re-converge.

    Requests 40..99 of the live stream see shard 1 down: scatter queries
    are answered from the healthy subset and flagged ``partial`` with the
    missing-shard list; the torn-read audit checks them against the same
    healthy subset.  At request 100 the shard restarts (store rebuild
    from the last generation) and the stream must return to full
    answers with no torn reads.
    """
    return _chaos_live_spec(
        "chaos-shard-kill",
        "Shard kill + restart under live load; degraded partial serving",
        "shard-kill@40+60:shard=1",
    )


@scenario("chaos-gray-slow")
def _chaos_gray_slow() -> ScenarioSpec:
    """Gray failure: one shard answers, but slowly, for a request window.

    Requests 40..99 pay a 2 ms injected service delay on shard 0 --
    responses stay correct and complete (no degradation), so the audit
    and oracle agreement must be unaffected; only wall-clock latency
    moves, and that rides in the profile channel.
    """
    return _chaos_live_spec(
        "chaos-gray-slow",
        "Slow-shard gray failure: injected delay, answers stay exact",
        "shard-slow@40+60:shard=0:delay_ms=2",
    )


@scenario("chaos-publish-stall")
def _chaos_publish_stall() -> ScenarioSpec:
    """Publish-path faults: one epoch stalled, one dropped entirely.

    The second publish is delayed by 10 ms (generation age grows, then
    recovers) and the fourth vanishes before reaching the store.  Serving
    must never observe a torn generation: every response still matches a
    re-serve against the generation of its claimed version.
    """
    return _chaos_live_spec(
        "chaos-publish-stall",
        "Stalled and dropped epoch publishes under live serving",
        "publish-stall@2+1:delay_ms=10,publish-drop@4+1",
    )


@scenario("chaos-admission-burst")
def _chaos_admission_burst() -> ScenarioSpec:
    """Synthetic admission spike: the daemon sheds, then recovers.

    Requests 30..69 run with the admission gate saturated by injected
    load (the harness admission limit), so live queries in the window are
    shed with the overloaded error.  The SLO gate bounds the counted
    error window to the fault window and requires clean serving after
    the burst releases.
    """
    return _chaos_live_spec(
        "chaos-admission-burst",
        "Admission-control burst: bounded shed window, clean recovery",
        "admission-burst@30+40:amount=4096",
    )


@scenario("vectorized-strict-small")
def _vectorized_strict_small() -> ScenarioSpec:
    """Pinned strict-equivalence guard: vectorized must match the oracle.

    Small enough to run in CI on every push; the kernel executes both
    batch backends on the same universe and fails unless metrics,
    per-node distributions and final coordinates are byte-identical.
    """
    return ScenarioSpec(
        name="vectorized-strict-small",
        description="Byte-identical vectorized-vs-scalar equivalence guard",
        mode="simulate",
        network=NetworkSpec(nodes=12),
        preset="mp",
        duration_s=240.0,
        backend="vectorized",
        strict_equivalence=True,
        seed=7,
    )


@scenario("placement-overlay")
def _placement_overlay() -> ScenarioSpec:
    """Application-level workload: stream-operator placement."""
    return ScenarioSpec(
        name="placement-overlay",
        description="Operator placement over application-level coordinates after a replay",
        mode="replay",
        network=NetworkSpec(nodes=24),
        preset="mp_energy",
        duration_s=1200.0,
        workload=WorkloadSpec(kind="placement", params={"operators": 16, "endpoints": 3}),
        seed=0,
    )
