"""Parameter-grid expansion over scenario specs.

A :class:`ScenarioGrid` turns one base :class:`ScenarioSpec` plus a set of
axes into the Cartesian product of concrete specs, one per grid cell::

    grid = ScenarioGrid(base)
    specs = grid.sweep(window=(16, 32, 64), threshold=(4.0, 8.0))
    # -> 6 specs named "base[window=16,threshold=4.0]", ...

Axis names are either full dotted paths into the spec's ``to_dict``
representation (``"network.nodes"``, ``"heuristic_params.window_size"``)
or one of the short aliases below, which map the paper's vocabulary onto
the spec fields.  Sweeping a filter/heuristic parameter on a preset-based
spec transparently resolves the preset into explicit fields first.

Seeds follow the base spec's ``seed_policy``: ``fixed`` reuses the base
seed for every cell (different configurations over the *same* universe --
the paper's comparison methodology), while ``per_cell`` derives a distinct
deterministic seed per cell (independent universes, e.g. for confidence
intervals over repetitions; sweep ``"seed"`` explicitly for full control).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.scenarios.spec import ScenarioError, ScenarioSpec

__all__ = ["ScenarioGrid", "AXIS_ALIASES"]

#: Short axis names accepted by :meth:`ScenarioGrid.sweep`.
AXIS_ALIASES: Dict[str, str] = {
    "nodes": "network.nodes",
    "shifting_fraction": "network.shifting_fraction",
    "drift_fraction_per_hour": "network.drift_fraction_per_hour",
    "noiseless": "network.noiseless",
    "window": "heuristic_params.window_size",
    "window_size": "heuristic_params.window_size",
    "threshold": "heuristic_params.threshold",
    "relative_threshold": "heuristic_params.relative_threshold",
    "threshold_ms": "heuristic_params.threshold_ms",
    "history": "filter_params.history",
    "percentile": "filter_params.percentile",
    "warmup": "filter_params.warmup",
    "churning_fraction": "churn.churning_fraction",
    "duration": "duration_s",
    "workload": "workload.kind",
    # Query-service workload knobs (the 'queries' workload kind).
    "count": "workload.params.count",
    "mix": "workload.params.mix",
    "k": "workload.params.k",
    "query_index": "workload.params.index",
}

#: Dotted-path prefixes that require the preset to be resolved first.
_CONFIG_PREFIXES = ("filter_params", "heuristic_params", "filter_kind", "heuristic_kind")


def _set_path(payload: Dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    target: Dict[str, Any] = payload
    for part in parts[:-1]:
        child = target.get(part)
        if not isinstance(child, dict):
            raise ScenarioError(
                f"axis {path!r}: {part!r} is not a nested mapping in the spec "
                f"(is the relevant feature enabled on the base spec?)"
            )
        target = child
    target[parts[-1]] = value


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return format(value, "g")
    return str(value)


class ScenarioGrid:
    """Cartesian-product expansion of a base spec over named axes."""

    __slots__ = ("base",)

    def __init__(self, base: ScenarioSpec) -> None:
        self.base = base

    def sweep(self, **axes: Sequence[Any]) -> List[ScenarioSpec]:
        """Expand the grid: one spec per combination of axis values.

        Axis order (keyword order) determines both the cell naming and the
        expansion order, so grids are reproducible.
        """
        if not axes:
            return [self.base]
        resolved_axes: List[Tuple[str, str, Sequence[Any]]] = []
        for alias, values in axes.items():
            path = AXIS_ALIASES.get(alias, alias)
            if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
                values = (values,)
            if len(values) == 0:
                raise ScenarioError(f"axis {alias!r} has no values")
            resolved_axes.append((alias, path, tuple(values)))

        base = self.base
        if any(path.split(".")[0] in _CONFIG_PREFIXES for _, path, _ in resolved_axes):
            base = base.resolved()

        specs: List[ScenarioSpec] = []
        for combo in itertools.product(*(values for _, _, values in resolved_axes)):
            payload = base.to_dict()
            label = ",".join(
                f"{alias}={_format_value(value)}"
                for (alias, _, _), value in zip(resolved_axes, combo)
            )
            for (alias, path, _), value in zip(resolved_axes, combo):
                _set_path(payload, path, value)
            payload["name"] = f"{base.name}[{label}]"
            spec = ScenarioSpec.from_dict(payload)
            if spec.seed_policy == "per_cell" and "seed" not in axes:
                spec = ScenarioSpec.from_dict(
                    {**spec.to_dict(), "seed": base.derive_cell_seed(label)}
                )
            specs.append(spec)
        return specs

    @classmethod
    def of(cls, base: ScenarioSpec, axes: Mapping[str, Sequence[Any]]) -> List[ScenarioSpec]:
        """Functional form: ``ScenarioGrid.of(base, {"window": (16, 32)})``."""
        return cls(base).sweep(**dict(axes))
