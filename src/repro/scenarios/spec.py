"""Declarative scenario specifications.

A :class:`ScenarioSpec` captures *everything* that defines one evaluation
condition from the paper -- and any condition beyond the paper -- as plain
data:

* the network universe (topology size, heavy-tail noise, route shifts,
  drift) via :class:`NetworkSpec`;
* the coordinate subsystem (a named preset, or an explicit filter +
  heuristic configuration);
* the execution mode: trace-driven ``replay`` (Sections III-V) or the full
  discrete-event protocol ``simulate`` (Section VI), optionally under a
  :class:`ChurnSpec` churn process;
* the workload evaluated on top of the coordinates
  (:class:`WorkloadSpec`): raw ping metrics, per-region drift tracking, or
  application-level kNN / operator-placement queries;
* duration, measurement window and the seed policy.

Specs are immutable, fully serialisable (``to_dict`` / ``from_dict``), and
content-addressable (:meth:`ScenarioSpec.spec_hash`), which is what lets
the engine cache shard results and fan grids out across worker processes.
Validation happens eagerly in ``__post_init__`` and reports *all* problems
at once with the scenario name attached, so a bad sweep fails with a
readable message instead of a deep traceback from the simulator.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.config import FilterConfig, HeuristicConfig, NodeConfig
from repro.latency.linkmodel import HeavyTailParameters
from repro.latency.planetlab import DatasetParameters
from repro.netsim.churn import ChurnConfig

__all__ = [
    "ScenarioError",
    "NetworkSpec",
    "ChurnSpec",
    "WorkloadSpec",
    "ScenarioSpec",
    "SEED_POLICIES",
    "SIMULATION_BACKENDS",
    "WORKLOAD_KINDS",
]


class ScenarioError(ValueError):
    """A scenario specification failed validation.

    The message lists every problem found, prefixed with the scenario name,
    e.g. ``scenario 'planetlab-churn-30pct': duration_s must be positive;
    churn.churning_fraction must be within [0, 1]``.
    """


#: Recognised seed policies for grid expansion.
SEED_POLICIES = ("fixed", "per_cell")

#: Recognised simulation backends.  ``scalar`` is the existing per-node
#: path (discrete-event simulation, or trace replay in replay mode);
#: ``vectorized`` runs the NumPy synchronous-round batch engine
#: (:mod:`repro.netsim.batch`) and requires ``mode='simulate'``.
SIMULATION_BACKENDS = ("scalar", "vectorized")

#: Recognised workload kinds and the parameters each accepts (with defaults).
WORKLOAD_KINDS: Dict[str, Dict[str, Any]] = {
    # Raw ping-level metrics only (the collector's system snapshot).
    "pings": {},
    # Per-region coordinate drift tracking (the Figure 7 methodology).
    "drift": {"snapshot_interval_s": 60.0},
    # Application-level k-nearest-neighbor queries over final coordinates.
    "knn": {"k": 3, "queries": 64},
    # Application-level operator placement over final coordinates.
    "placement": {"operators": 16, "endpoints": 3},
    # Coordinate query service: a deterministic query mix served from a
    # snapshot of the final coordinates through the batching planner.
    "queries": {
        "count": 256,
        "mix": "mixed",
        "k": 3,
        "radius_ms": 50.0,
        "index": "vptree",
        "cache_entries": 1024,
        "batch_size": 64,
    },
    # Live coordinate serving: the simulation streams epochs into a
    # running sharded daemon (zero-downtime rollover) while a closed-loop
    # client issues queries over the wire; after the final epoch a
    # measured workload is replayed and checksummed against the
    # single-store linear oracle.  Requires the vectorized backend (the
    # array-native publish path is what streams epochs).
    "queries-live": {
        "count": 256,
        "live_count": 64,
        "mix": "mixed",
        "k": 3,
        "radius_ms": 50.0,
        "index": "vptree",
        "shards": 2,
        "publish_every_ticks": 8,
        "concurrency": 4,
        "cache_entries": 1024,
        # Optional deterministic fault schedule injected into the live
        # daemon: comma-separated ``kind@at+duration[:key=value...]``
        # (see repro.chaos.schedule); empty string disables chaos.
        "chaos": "",
    },
}


def _check(errors: List[str], condition: bool, message: str) -> None:
    if not condition:
        errors.append(message)


@dataclass(frozen=True, slots=True)
class NetworkSpec:
    """Topology size and latency-model statistics of the network universe."""

    #: Number of participating hosts.
    nodes: int = 24
    #: Fraction of links whose baseline shifts during the run (route changes).
    shifting_fraction: float = 0.10
    #: Range of multipliers applied at a baseline shift.
    shift_multiplier_range: Tuple[float, float] = (0.7, 1.6)
    #: Slow drift applied to shifting links, as a fraction per hour.
    drift_fraction_per_hour: float = 0.02
    #: Noiseless links (the static latency-matrix idealisation).
    noiseless: bool = False
    #: Overrides for :class:`~repro.latency.linkmodel.HeavyTailParameters`
    #: fields (e.g. ``{"outlier_probability": 0.01}``).
    heavy_tail: Mapping[str, Any] = field(default_factory=dict)

    def validate(self) -> List[str]:
        errors: List[str] = []
        _check(errors, self.nodes >= 2, f"network.nodes must be >= 2, got {self.nodes}")
        _check(
            errors,
            0.0 <= self.shifting_fraction <= 1.0,
            "network.shifting_fraction must be within [0, 1]",
        )
        low, high = self.shift_multiplier_range
        _check(
            errors,
            low > 0.0 and high >= low,
            "network.shift_multiplier_range must be a positive, ordered pair",
        )
        _check(
            errors,
            self.drift_fraction_per_hour >= 0.0,
            "network.drift_fraction_per_hour must be non-negative",
        )
        try:
            HeavyTailParameters.from_mapping(self.heavy_tail)
        except ValueError as exc:
            errors.append(f"network.heavy_tail: {exc}")
        return errors

    def to_parameters(self) -> DatasetParameters:
        """Materialise into the dataset-layer parameter object."""
        heavy = HeavyTailParameters.from_mapping(self.heavy_tail)
        return DatasetParameters(
            heavy_tail=heavy,
            shifting_fraction=self.shifting_fraction,
            shift_multiplier_range=tuple(self.shift_multiplier_range),
            drift_fraction_per_hour=self.drift_fraction_per_hour,
            noiseless=self.noiseless,
        )


@dataclass(frozen=True, slots=True)
class ChurnSpec:
    """Churn process parameters (nodes entering and leaving)."""

    churning_fraction: float = 0.3
    mean_session_s: float = 600.0
    mean_downtime_s: float = 120.0

    def validate(self) -> List[str]:
        errors: List[str] = []
        _check(
            errors,
            0.0 <= self.churning_fraction <= 1.0,
            "churn.churning_fraction must be within [0, 1]",
        )
        _check(errors, self.mean_session_s > 0.0, "churn.mean_session_s must be positive")
        _check(errors, self.mean_downtime_s > 0.0, "churn.mean_downtime_s must be positive")
        return errors

    def to_config(self) -> ChurnConfig:
        return ChurnConfig(
            churning_fraction=self.churning_fraction,
            mean_session_s=self.mean_session_s,
            mean_downtime_s=self.mean_downtime_s,
        )


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """What is evaluated on top of the coordinate run."""

    kind: str = "pings"
    params: Mapping[str, Any] = field(default_factory=dict)

    def validate(self) -> List[str]:
        errors: List[str] = []
        if self.kind not in WORKLOAD_KINDS:
            errors.append(
                f"workload.kind must be one of {sorted(WORKLOAD_KINDS)}, got {self.kind!r}"
            )
            return errors
        known = WORKLOAD_KINDS[self.kind]
        unknown = sorted(set(self.params) - set(known))
        _check(
            errors,
            not unknown,
            f"workload {self.kind!r} has unknown parameters {unknown}; "
            f"known: {sorted(known)}",
        )
        if self.kind in ("queries", "queries-live") and not unknown:
            # Imported lazily: the scenario layer must not eagerly load the
            # service subsystem (kernel and CLI keep that import one-way
            # and on-demand) just for two membership checks.
            from repro.service.index import INDEX_KINDS
            from repro.service.workload import QUERY_MIXES

            mix = self.params.get("mix", known["mix"])
            _check(
                errors,
                mix in QUERY_MIXES,
                f"workload.mix must be one of {sorted(QUERY_MIXES)}, got {mix!r}",
            )
            index = self.params.get("index", known["index"])
            _check(
                errors,
                index in INDEX_KINDS,
                f"workload.index must be one of {list(INDEX_KINDS)}, got {index!r}",
            )
        if self.kind == "queries-live" and not unknown:
            shards = self.params.get("shards", known["shards"])
            _check(
                errors,
                isinstance(shards, int) and shards >= 1,
                f"workload.shards must be a positive integer, got {shards!r}",
            )
            cadence = self.params.get(
                "publish_every_ticks", known["publish_every_ticks"]
            )
            _check(
                errors,
                isinstance(cadence, int) and cadence >= 1,
                "workload.publish_every_ticks must be a positive integer, "
                f"got {cadence!r}",
            )
            chaos = self.params.get("chaos", known["chaos"])
            if not isinstance(chaos, str):
                errors.append(
                    f"workload.chaos must be a schedule string, got {chaos!r}"
                )
            elif chaos:
                # Lazy for the same reason as the index/mix checks above.
                from repro.chaos.schedule import FaultSchedule

                try:
                    FaultSchedule.parse(chaos)
                except ValueError as exc:
                    errors.append(f"workload.chaos: {exc}")
        return errors

    def param(self, name: str) -> Any:
        """Parameter value with the workload-kind default applied."""
        return self.params.get(name, WORKLOAD_KINDS[self.kind][name])


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One fully specified evaluation condition."""

    #: Identifier; grid expansion appends ``[axis=value,...]`` suffixes.
    name: str
    description: str = ""
    #: ``replay`` (trace-driven) or ``simulate`` (discrete-event protocol).
    mode: str = "replay"
    network: NetworkSpec = field(default_factory=NetworkSpec)
    #: Named :class:`~repro.core.config.NodeConfig` preset; mutually
    #: resolvable with the explicit filter/heuristic fields below.
    preset: Optional[str] = "mp_energy"
    #: Explicit filter configuration (overrides the preset's filter).
    filter_kind: Optional[str] = None
    filter_params: Mapping[str, Any] = field(default_factory=dict)
    #: Explicit heuristic configuration (overrides the preset's heuristic).
    heuristic_kind: Optional[str] = None
    heuristic_params: Mapping[str, Any] = field(default_factory=dict)
    #: Run Vivaldi in the height-augmented coordinate space (Dabek et al.):
    #: predicted RTT becomes ``||x_i - x_j|| + h_i + h_j``.  Applies on top
    #: of whatever preset / explicit configuration is selected.
    use_height: bool = False
    #: Simulated duration in seconds.
    duration_s: float = 1200.0
    #: Metrics are reported from this time on (default: half the duration).
    measurement_start_s: Optional[float] = None
    #: Replay mode: seconds between successive pings from one node.
    ping_interval_s: float = 2.0
    #: Replay mode: neighbor-set size (None = full mesh over time).
    neighbors_per_node: Optional[int] = None
    #: Simulate mode: sampling-protocol interval (None = protocol default).
    sampling_interval_s: Optional[float] = None
    #: Simulate mode: probability that a ping is lost.
    loss_probability: float = 0.01
    #: Simulate mode: bootstrap neighbor count per host.
    bootstrap_neighbors: int = 4
    #: Optional churn process (simulate mode only).
    churn: Optional[ChurnSpec] = None
    #: Execution backend: ``scalar`` (the default per-node path) or
    #: ``vectorized`` (the NumPy synchronous-round batch engine; simulate
    #: mode only, and the coordinate configuration must be within the
    #: vectorized surface -- see :mod:`repro.core.vectorized`).
    backend: str = "scalar"
    #: When True (vectorized backend only), the kernel also runs the
    #: scalar tick oracle on the same universe and fails the run unless
    #: metrics, per-node distributions and final coordinates are
    #: byte-identical.  Meant for small pinned specs that guard the
    #: backend's equivalence in CI.
    strict_equivalence: bool = False
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    #: Base random seed for the whole universe.
    seed: int = 0
    #: ``fixed``: every grid cell keeps this seed (same universe, different
    #: configuration -- the paper's side-by-side methodology).  ``per_cell``:
    #: each cell derives a distinct seed from the base seed and its name.
    seed_policy: str = "fixed"

    def __post_init__(self) -> None:
        errors: List[str] = []
        _check(errors, bool(self.name), "name must be non-empty")
        _check(
            errors,
            self.mode in ("replay", "simulate"),
            f"mode must be 'replay' or 'simulate', got {self.mode!r}",
        )
        errors.extend(self.network.validate())
        _check(errors, self.duration_s > 0.0, "duration_s must be positive")
        if self.measurement_start_s is not None:
            _check(
                errors,
                0.0 <= self.measurement_start_s < self.duration_s,
                "measurement_start_s must lie within [0, duration_s)",
            )
        _check(errors, self.ping_interval_s > 0.0, "ping_interval_s must be positive")
        if self.neighbors_per_node is not None:
            _check(
                errors, self.neighbors_per_node >= 1, "neighbors_per_node must be >= 1"
            )
        if self.sampling_interval_s is not None:
            _check(
                errors, self.sampling_interval_s > 0.0, "sampling_interval_s must be positive"
            )
        _check(
            errors,
            0.0 <= self.loss_probability < 1.0,
            "loss_probability must be within [0, 1)",
        )
        _check(errors, self.bootstrap_neighbors >= 1, "bootstrap_neighbors must be >= 1")
        _check(
            errors,
            self.backend in SIMULATION_BACKENDS,
            f"backend must be one of {SIMULATION_BACKENDS}, got {self.backend!r}",
        )
        if self.backend == "vectorized" and self.mode != "simulate":
            errors.append("backend 'vectorized' requires mode='simulate'")
        if self.strict_equivalence and self.backend != "vectorized":
            errors.append("strict_equivalence requires backend='vectorized'")
        if self.preset is None and (self.filter_kind is None or self.heuristic_kind is None):
            errors.append(
                "either a preset or both filter_kind and heuristic_kind must be given"
            )
        else:
            # Build the coordinate configuration once so bad preset names
            # and bad filter/heuristic parameters (e.g. from a sweep axis)
            # fail here with the scenario name attached, not mid-run.
            try:
                config = self.node_config()
                config.filter.build()
                config.heuristic.build()
            except (TypeError, ValueError) as exc:
                errors.append(f"coordinate configuration invalid: {exc}")
            else:
                if self.backend == "vectorized":
                    # Imported lazily, mirroring the service-layer checks:
                    # the spec layer must not eagerly pull in the batch
                    # engine for a membership test.
                    from repro.core.vectorized import unsupported_reasons

                    for reason in unsupported_reasons(config):
                        errors.append(
                            f"backend 'vectorized': {reason}; set "
                            "backend='scalar' to run this configuration "
                            "on the per-node path"
                        )
        if self.churn is not None:
            if self.mode != "simulate":
                errors.append("churn requires mode='simulate' (replay has a fixed trace)")
            errors.extend(self.churn.validate())
        errors.extend(self.workload.validate())
        if self.workload.kind == "drift" and self.mode != "replay":
            errors.append("the drift workload requires mode='replay'")
        if self.workload.kind == "queries-live" and self.backend != "vectorized":
            errors.append(
                "the queries-live workload requires backend='vectorized' "
                "(epochs stream through the batch engine's publish path)"
            )
        _check(
            errors,
            self.seed_policy in SEED_POLICIES,
            f"seed_policy must be one of {SEED_POLICIES}, got {self.seed_policy!r}",
        )
        if errors:
            raise ScenarioError(f"scenario {self.name!r}: " + "; ".join(errors))

    # ------------------------------------------------------------------
    # Configuration resolution
    # ------------------------------------------------------------------
    def node_config(self) -> NodeConfig:
        """The coordinate-subsystem configuration this scenario runs with."""
        if self.preset is not None:
            config = NodeConfig.preset(self.preset)
        else:
            config = NodeConfig()
        if self.filter_kind is not None:
            config = replace(
                config, filter=FilterConfig(self.filter_kind, dict(self.filter_params))
            )
        if self.heuristic_kind is not None:
            config = replace(
                config,
                heuristic=HeuristicConfig(self.heuristic_kind, dict(self.heuristic_params)),
            )
        if self.use_height:
            config = replace(
                config, vivaldi=replace(config.vivaldi, use_height=True)
            )
        return config

    def resolved(self) -> "ScenarioSpec":
        """An equivalent spec with the preset expanded into explicit fields.

        Grid sweeps over filter/heuristic parameters need a concrete base to
        override, so they resolve the preset first.
        """
        config = self.node_config()
        return replace(
            self,
            preset=None,
            filter_kind=config.filter.kind,
            filter_params=dict(config.filter.params),
            heuristic_kind=config.heuristic.kind,
            heuristic_params=dict(config.heuristic.params),
        )

    def resolved_measurement_start_s(self) -> float:
        if self.measurement_start_s is not None:
            return self.measurement_start_s
        return self.duration_s / 2.0

    # ------------------------------------------------------------------
    # Serialisation and hashing
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain-data representation (JSON-safe, ``from_dict`` invertible)."""
        payload = asdict(self)
        payload["network"]["heavy_tail"] = dict(self.network.heavy_tail)
        payload["filter_params"] = dict(self.filter_params)
        payload["heuristic_params"] = dict(self.heuristic_params)
        payload["workload"]["params"] = dict(self.workload.params)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        data = dict(payload)
        name = data.get("name", "<unnamed>")
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(data) - known)
        if unknown:
            raise ScenarioError(
                f"scenario {name!r}: unknown fields {unknown}; known: {sorted(known)}"
            )
        if "network" in data and isinstance(data["network"], Mapping):
            network = dict(data["network"])
            if "shift_multiplier_range" in network:
                network["shift_multiplier_range"] = tuple(network["shift_multiplier_range"])
            data["network"] = NetworkSpec(**network)
        if data.get("churn") is not None and isinstance(data["churn"], Mapping):
            data["churn"] = ChurnSpec(**data["churn"])
        if "workload" in data and isinstance(data["workload"], Mapping):
            data["workload"] = WorkloadSpec(**data["workload"])
        return cls(**data)

    def spec_hash(self) -> str:
        """Content hash over everything that affects the run's outcome.

        The identity fields (``name``, ``description``) and the ``seed`` are
        excluded: renaming a scenario must not invalidate cached results,
        and the engine's cache key is the (spec hash, seed) *pair*.
        """
        payload = self.to_dict()
        for excluded in ("name", "description", "seed"):
            payload.pop(excluded, None)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()

    def derive_cell_seed(self, cell_label: str) -> int:
        """Deterministic per-cell seed under the ``per_cell`` seed policy."""
        key = f"{self.seed}:{cell_label}".encode()
        return int.from_bytes(hashlib.blake2b(key, digest_size=4).digest(), "big")
