"""Declarative scenario subsystem.

This package turns the repo's evaluation conditions into data:

* :mod:`repro.scenarios.spec` -- :class:`ScenarioSpec` and its component
  specs (network, churn, workload), validation, serialisation, hashing;
* :mod:`repro.scenarios.grid` -- :class:`ScenarioGrid` parameter sweeps;
* :mod:`repro.scenarios.registry` -- the ``@scenario(name)`` registry;
* :mod:`repro.scenarios.library` -- built-in scenarios porting the
  ``fig*`` experiments (drift, deployment CDFs, churn ablation) and the
  application-level overlay workloads;
* :mod:`repro.scenarios.cli` -- the ``repro scenarios`` command group.

Execution lives in :mod:`repro.engine`, which shards grids across worker
processes and caches completed cells.
"""

from repro.scenarios.grid import ScenarioGrid
from repro.scenarios.registry import get_scenario, iter_scenarios, scenario, scenario_names
from repro.scenarios.spec import (
    ChurnSpec,
    NetworkSpec,
    ScenarioError,
    ScenarioSpec,
    WorkloadSpec,
)

__all__ = [
    "ChurnSpec",
    "NetworkSpec",
    "ScenarioError",
    "ScenarioGrid",
    "ScenarioSpec",
    "WorkloadSpec",
    "get_scenario",
    "iter_scenarios",
    "scenario",
    "scenario_names",
]
