"""Named-scenario registry.

Experiments register declarative scenario factories under stable names::

    @scenario("planetlab-churn-30pct")
    def _churned_deployment() -> ScenarioSpec:
        return ScenarioSpec(name="planetlab-churn-30pct", mode="simulate", ...)

Factories (rather than spec instances) are registered so that building a
scenario is always side-effect free and cheap at import time; the spec is
constructed -- and therefore validated -- when it is requested.  The CLI,
the engine benchmarks and the tests all resolve scenarios through this
registry, so "run the churn scenario at 500 nodes" is a name plus a grid
axis, not a new script.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Tuple

from repro.scenarios.spec import ScenarioError, ScenarioSpec

__all__ = ["scenario", "get_scenario", "scenario_names", "iter_scenarios", "register"]

ScenarioFactory = Callable[[], ScenarioSpec]

_REGISTRY: Dict[str, ScenarioFactory] = {}


def register(name: str, factory: ScenarioFactory) -> None:
    """Register ``factory`` under ``name`` (programmatic form)."""
    if name in _REGISTRY:
        raise ScenarioError(f"scenario {name!r} is already registered")
    _REGISTRY[name] = factory


def scenario(name: str) -> Callable[[ScenarioFactory], ScenarioFactory]:
    """Decorator form of :func:`register`.

    The registered name wins over whatever ``name`` the factory's spec
    carries: the spec is re-labelled on construction so registry lookups
    and result labels always agree.
    """

    def decorator(factory: ScenarioFactory) -> ScenarioFactory:
        register(name, factory)
        return factory

    return decorator


def get_scenario(name: str) -> ScenarioSpec:
    """Build the named scenario's spec (validated on construction)."""
    _ensure_library_loaded()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise ScenarioError(f"unknown scenario {name!r}; known: {known}") from None
    spec = factory()
    if spec.name != name:
        spec = ScenarioSpec.from_dict({**spec.to_dict(), "name": name})
    return spec


def scenario_names() -> List[str]:
    _ensure_library_loaded()
    return sorted(_REGISTRY)


def iter_scenarios() -> Iterator[Tuple[str, ScenarioSpec]]:
    for name in scenario_names():
        yield name, get_scenario(name)


def _ensure_library_loaded() -> None:
    """Import the built-in scenario library exactly once.

    Imported lazily to avoid a registry <-> library import cycle while
    still making ``get_scenario("fig07-drift")`` work without the caller
    importing the library module explicitly.
    """
    from repro.scenarios import library  # noqa: F401  (import registers)
