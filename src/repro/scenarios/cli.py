"""The ``repro scenarios`` command group.

Usage::

    repro scenarios list
    repro scenarios run fig07-drift planetlab-churn-30pct --workers 4
    repro scenarios sweep knn-overlay --set window=16,32,64 --set threshold=4,8 \
        --workers 4 --cache .scenario-cache --check-serial --bench-json BENCH_engine.json

(``repro`` is the console entry point; ``python -m repro.analysis.cli``
works identically.)  ``run`` executes registered scenarios; ``sweep``
expands one registered scenario over parameter axes and shards the grid
across worker processes.  ``--check-serial`` re-runs the grid serially
and verifies the parallel output is byte-identical, reporting the
speedup; ``--bench-json`` records that comparison as a benchmark
artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.engine import execute
from repro.engine.results import ScenarioResult, results_canonical_json
from repro.scenarios.grid import ScenarioGrid
from repro.scenarios.registry import get_scenario, iter_scenarios
from repro.scenarios.spec import SIMULATION_BACKENDS, ScenarioSpec

__all__ = ["main"]

#: Headline metric columns printed per result (when defined).
_SUMMARY_METRICS = (
    ("median_of_median_application_error", "med err"),
    ("median_of_p95_application_error", "p95 err"),
    ("aggregate_application_instability", "instab ms/s"),
    ("application_updates_per_node_per_s", "upd/node/s"),
)


def _parse_axis(raw: str) -> tuple:
    if "=" not in raw:
        raise argparse.ArgumentTypeError(
            f"--set expects AXIS=V1[,V2,...], got {raw!r}"
        )
    name, _, values_raw = raw.partition("=")
    values: List[Any] = []
    for token in values_raw.split(","):
        token = token.strip()
        if not token:
            raise argparse.ArgumentTypeError(
                f"--set {name.strip()}: empty value in {values_raw!r}"
            )
        if token.lower() in ("true", "false"):
            values.append(token.lower() == "true")
            continue
        for converter in (int, float):
            try:
                values.append(converter(token))
                break
            except ValueError:
                continue
        else:
            values.append(token)
    return name.strip(), tuple(values)


def _format_metric(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.4g}"


def _print_results(results: Sequence[ScenarioResult]) -> None:
    name_width = max(len(result.name) for result in results)
    header = f"{'scenario':<{name_width}}  " + "  ".join(
        f"{label:>12}" for _, label in _SUMMARY_METRICS
    ) + f"  {'time':>7}  cached"
    print(header)
    print("-" * len(header))
    for result in results:
        row = f"{result.name:<{name_width}}  " + "  ".join(
            f"{_format_metric(result.metrics.get(key)):>12}" for key, _ in _SUMMARY_METRICS
        )
        print(f"{row}  {result.elapsed_s:>6.1f}s  {'yes' if result.cached else 'no'}")


def _write_json(path: Path, results: Sequence[ScenarioResult]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps([result.to_dict() for result in results], indent=2))


def _cmd_list(args: argparse.Namespace) -> int:
    for name, spec in iter_scenarios():
        print(
            f"{name:<28} {spec.mode:<9} {spec.network.nodes:>4} nodes  "
            f"{spec.workload.kind:<9} {spec.description}"
        )
    return 0


def _with_backend(spec: ScenarioSpec, backend: Optional[str]) -> ScenarioSpec:
    """Re-validate the spec with the CLI backend override applied."""
    if backend is None or spec.backend == backend:
        return spec
    return ScenarioSpec.from_dict({**spec.to_dict(), "backend": backend})


def _write_outputs(args: argparse.Namespace, results: Sequence[ScenarioResult]) -> None:
    """Shared tail of every command: the --output / --canonical-output files."""
    if args.output is not None:
        _write_json(args.output, results)
    if args.canonical_output is not None:
        args.canonical_output.write_text(results_canonical_json(list(results)) + "\n")


def _cmd_run(args: argparse.Namespace) -> int:
    specs = [_with_backend(get_scenario(name), args.backend) for name in args.names]
    if args.profile is not None:
        # Per-phase tick timings only exist inside the kernel, so profiled
        # runs execute serially and uncached in this process (--workers and
        # --cache are ignored).
        from repro.engine.kernel import run_scenario

        import time as _time

        started = _time.perf_counter()
        results: List[ScenarioResult] = []
        profiles: Dict[str, Any] = {}
        for spec in specs:
            run = run_scenario(spec, collect_profile=True)
            results.append(run.result)
            profiles[spec.name] = run.profile or {
                "note": (
                    "per-phase timings require backend='vectorized' "
                    "or a 'queries' workload"
                )
            }
        summary = f"{_time.perf_counter() - started:.1f}s (serial, profiled)"
    else:
        report = execute(
            specs, workers=args.workers, cache_dir=args.cache, mp_context=args.mp_context
        )
        results = report.results
        summary = (
            f"{report.elapsed_s:.1f}s "
            f"({report.workers} worker(s), {report.cache_hits} cache hit(s))"
        )
    _print_results(results)
    print(f"\n{len(results)} scenario(s) in {summary}")
    if args.profile is not None:
        args.profile.write_text(json.dumps(profiles, indent=2) + "\n")
        print(f"per-phase timings written to {args.profile}")
    _write_outputs(args, results)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.bench_json is not None and not args.check_serial:
        print("error: --bench-json requires --check-serial", file=sys.stderr)
        return 2
    base = _with_backend(get_scenario(args.name), args.backend)
    axes: Dict[str, tuple] = {}
    for axis_name, values in args.set or []:
        if axis_name in axes:
            print(f"error: axis {axis_name!r} given more than once", file=sys.stderr)
            return 2
        axes[axis_name] = values
    cells = ScenarioGrid(base).sweep(**axes)
    total_nodes = sum(cell.network.nodes for cell in cells)
    print(
        f"sweeping {base.name!r}: {len(cells)} cell(s), {total_nodes} total nodes, "
        f"{args.workers} worker(s)"
    )
    report = execute(
        cells, workers=args.workers, cache_dir=args.cache, mp_context=args.mp_context
    )
    _print_results(report.results)
    print(f"\nparallel wall-clock: {report.elapsed_s:.1f}s ({report.cache_hits} cache hit(s))")

    if args.check_serial:
        compared = report
        if report.cache_hits:
            # A partly cache-served run would make both the timing and the
            # identity check meaningless; re-run the parallel leg fresh.
            print("parallel run was partly cached; re-running uncached for the comparison")
            compared = execute(cells, workers=args.workers, mp_context=args.mp_context)
        serial = execute(cells, workers=1)
        identical = serial.canonical_json() == compared.canonical_json()
        speedup = (
            serial.elapsed_s / compared.elapsed_s if compared.elapsed_s > 0 else float("nan")
        )
        print(
            f"serial wall-clock: {serial.elapsed_s:.1f}s -> speedup {speedup:.2f}x, "
            f"byte-identical: {identical}"
        )
        bench_record: Dict[str, Any] = {
            "benchmark": "engine_scaling",
            "scenario": base.name,
            "axes": {name: list(values) for name, values in axes.items()},
            "cells": len(cells),
            "total_nodes": total_nodes,
            "workers": compared.workers,
            "mp_context": args.mp_context,
            # Speedup is bounded by the host: worker processes time-share
            # whatever cores exist, so a 1-core host can only demonstrate
            # determinism, not scaling.
            "host_cpu_count": os.cpu_count(),
            "serial_s": round(serial.elapsed_s, 3),
            "parallel_s": round(compared.elapsed_s, 3),
            "speedup": round(speedup, 3),
            "byte_identical": identical,
        }
        # Written before the divergence check: a failing comparison is
        # exactly when the recorded evidence matters.
        if args.bench_json is not None:
            args.bench_json.write_text(json.dumps(bench_record, indent=2) + "\n")
            print(f"benchmark record written to {args.bench_json}")
        if not identical:
            print("error: parallel results diverged from serial results", file=sys.stderr)
            return 1
    _write_outputs(args, report.results)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro scenarios",
        description="List and execute declarative scenarios.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered scenarios").set_defaults(
        handler=_cmd_list
    )

    run = commands.add_parser("run", help="run registered scenarios by name")
    run.add_argument("names", nargs="+", help="registered scenario names")
    run.add_argument(
        "--profile",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "run serially (uncached) and dump per-phase wall-clock timings "
            "as JSON: tick phases (sample, filter, update, heuristic, "
            "metrics) for vectorized runs, plus snapshot-publish and "
            "query-serving phases for 'queries' workloads on any backend"
        ),
    )
    run.set_defaults(handler=_cmd_run)

    sweep = commands.add_parser("sweep", help="expand one scenario over parameter axes")
    sweep.add_argument("name", help="registered scenario to use as the grid base")
    sweep.add_argument(
        "--set",
        action="append",
        type=_parse_axis,
        metavar="AXIS=V1[,V2,...]",
        help="axis values (repeatable); e.g. --set window=16,32 --set nodes=64",
    )
    sweep.add_argument(
        "--check-serial",
        action="store_true",
        help="re-run serially and verify the parallel output is byte-identical",
    )
    sweep.add_argument(
        "--bench-json",
        type=Path,
        default=None,
        help="write the serial-vs-parallel comparison to this JSON file",
    )
    sweep.set_defaults(handler=_cmd_sweep)

    for sub in (run, sweep):
        sub.add_argument("--workers", type=int, default=1, help="worker processes")
        sub.add_argument(
            "--cache", type=Path, default=None, help="result cache directory"
        )
        sub.add_argument(
            "--output", type=Path, default=None, help="write full results as JSON"
        )
        sub.add_argument(
            "--backend",
            choices=SIMULATION_BACKENDS,
            default=None,
            help="override the spec's simulation backend (vectorized needs simulate mode)",
        )
        sub.add_argument(
            "--canonical-output",
            type=Path,
            default=None,
            metavar="PATH",
            help="write byte-stable canonical JSON (for determinism diffs)",
        )
        sub.add_argument(
            "--mp-context",
            choices=("spawn", "fork", "forkserver"),
            default="spawn",
            help="multiprocessing start method (fork starts faster on Linux)",
        )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ValueError as exc:
        # ScenarioError (spec/registry problems) and engine argument
        # errors both surface as a one-line message, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
