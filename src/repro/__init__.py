"""Reproduction of *Stable and Accurate Network Coordinates* (Ledlie & Seltzer).

The package implements the full system described in the paper:

* :mod:`repro.core` -- the Vivaldi algorithm, the per-link Moving Percentile
  (MP) filter, the two-window change detector, and the application-level
  update heuristics (SYSTEM, APPLICATION, RELATIVE, ENERGY, and
  APPLICATION/CENTROID).
* :mod:`repro.latency` -- the latency substrate: geographic topologies,
  per-link heavy-tailed observation models, and a synthetic "PlanetLab-like"
  trace generator standing in for the paper's 3-day, 269-node ping trace.
* :mod:`repro.netsim` -- a discrete-event simulator that runs the full
  distributed protocol (gossip neighbor discovery, round-robin sampling).
* :mod:`repro.metrics` -- the paper's accuracy (relative error) and
  stability (coordinate change per second) metrics.
* :mod:`repro.overlay` -- the motivating application substrate
  (coordinate-driven operator placement and k-nearest-neighbor queries).
* :mod:`repro.baselines` -- static-latency-matrix evaluation, the
  de Launois damping variant, and a landmark (GNP-style) embedding.
* :mod:`repro.analysis` -- one experiment module per figure and table in
  the paper's evaluation.

Quickstart::

    from repro import CoordinateNode, NodeConfig
    from repro.latency import planetlab_topology

    topo = planetlab_topology(nodes=32, seed=1)
    node = CoordinateNode("n0", NodeConfig.preset("mp_energy"))

See ``examples/quickstart.py`` for a complete runnable example.
"""

from __future__ import annotations

from repro.core.config import NodeConfig
from repro.core.coordinate import Coordinate
from repro.core.filters import (
    EWMAFilter,
    MovingPercentileFilter,
    NoFilter,
    ThresholdFilter,
)
from repro.core.heuristics import (
    ApplicationCentroidHeuristic,
    ApplicationHeuristic,
    EnergyHeuristic,
    RelativeHeuristic,
    SystemHeuristic,
)
from repro.core.node import CoordinateNode
from repro.core.vivaldi import VivaldiConfig, VivaldiState, vivaldi_update

__all__ = [
    "ApplicationCentroidHeuristic",
    "ApplicationHeuristic",
    "Coordinate",
    "CoordinateNode",
    "EWMAFilter",
    "EnergyHeuristic",
    "MovingPercentileFilter",
    "NoFilter",
    "NodeConfig",
    "RelativeHeuristic",
    "SystemHeuristic",
    "ThresholdFilter",
    "VivaldiConfig",
    "VivaldiState",
    "vivaldi_update",
]

__version__ = "1.0.0"
