"""Process-wide telemetry: counters, gauges, mergeable histograms, spans.

See :mod:`repro.obs.registry` for the instrument model,
:mod:`repro.obs.tracing` for spans and per-request trace recording, and
:mod:`repro.obs.regression` for the histogram tail-regression analyzer
that backs the CI gate.

The module-level helpers below operate on one process-wide default
registry, used for coarse engine-level spans and counters; serving
components (stores, daemons, planners, load runs) construct their own
:class:`~repro.obs.registry.TelemetryRegistry` so concurrent runs never
share instruments.
"""

from __future__ import annotations

from typing import Any

from repro.obs.registry import (
    DEFAULT_SCHEME,
    BucketScheme,
    Counter,
    Gauge,
    LatencyHistogram,
    TelemetryRegistry,
)
from repro.obs.tracing import NOOP_SPAN, TraceRecorder

__all__ = [
    "BucketScheme",
    "Counter",
    "DEFAULT_SCHEME",
    "Gauge",
    "LatencyHistogram",
    "NOOP_SPAN",
    "TelemetryRegistry",
    "TraceRecorder",
    "get_registry",
    "set_spans_enabled",
    "span",
]

#: The process-wide default registry (spans disabled by default).
_GLOBAL_REGISTRY = TelemetryRegistry()


def get_registry() -> TelemetryRegistry:
    """The process-wide default registry."""
    return _GLOBAL_REGISTRY


def set_spans_enabled(enabled: bool = True) -> None:
    """Toggle span recording on the process-wide default registry."""
    _GLOBAL_REGISTRY.enable_spans(enabled)


def span(name: str, trace: Any = None, **labels: Any):
    """A span on the process-wide default registry (no-op when disabled)."""
    return _GLOBAL_REGISTRY.span(name, trace=trace, **labels)
