"""Process-wide telemetry: counters, gauges, mergeable histograms, spans.

See :mod:`repro.obs.registry` for the instrument model,
:mod:`repro.obs.tracing` for spans and per-request trace recording, and
:mod:`repro.obs.regression` for the histogram tail-regression and
coordinate-accuracy analyzers that back the CI gates,
:mod:`repro.obs.health` for streaming per-epoch coordinate-health
snapshots (relative error, drift, neighbor churn), and
:mod:`repro.obs.events` for the bounded structured event log.

The module-level helpers below operate on one process-wide default
registry, used for coarse engine-level spans and counters; serving
components (stores, daemons, planners, load runs) construct their own
:class:`~repro.obs.registry.TelemetryRegistry` so concurrent runs never
share instruments.
"""

from __future__ import annotations

from typing import Any

from repro.obs.events import EVENT_KINDS, EventLog
from repro.obs.health import (
    DISPLACEMENT_SCHEME,
    ERROR_SCHEME,
    HealthSnapshot,
    HealthTracker,
)
from repro.obs.registry import (
    DEFAULT_SCHEME,
    BucketScheme,
    Counter,
    Gauge,
    LatencyHistogram,
    TelemetryRegistry,
)
from repro.obs.tracing import NOOP_SPAN, TraceRecorder

__all__ = [
    "BucketScheme",
    "Counter",
    "DEFAULT_SCHEME",
    "DISPLACEMENT_SCHEME",
    "ERROR_SCHEME",
    "EVENT_KINDS",
    "EventLog",
    "Gauge",
    "HealthSnapshot",
    "HealthTracker",
    "LatencyHistogram",
    "NOOP_SPAN",
    "TelemetryRegistry",
    "TraceRecorder",
    "get_registry",
    "set_spans_enabled",
    "span",
]

#: The process-wide default registry (spans disabled by default).
_GLOBAL_REGISTRY = TelemetryRegistry()


def get_registry() -> TelemetryRegistry:
    """The process-wide default registry."""
    return _GLOBAL_REGISTRY


def set_spans_enabled(enabled: bool = True) -> None:
    """Toggle span recording on the process-wide default registry."""
    _GLOBAL_REGISTRY.enable_spans(enabled)


def span(name: str, trace: Any = None, **labels: Any):
    """A span on the process-wide default registry (no-op when disabled)."""
    return _GLOBAL_REGISTRY.span(name, trace=trace, **labels)
