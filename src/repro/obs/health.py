"""Streaming coordinate-health: the paper's quality metrics, live.

The offline experiments answer "are the coordinates any good?" after the
fact: fig05 plots relative embedding error CDFs, fig07 tracks drift
(coordinates moving consistently to reflect real network change), fig11
compares application-level against raw coordinates.  This module makes
the same quantities available *while the system runs*, computed
incrementally per published epoch directly from the vectorized
``(n, d)`` arrays -- no per-node objects, no second pass over history.

Per epoch, :class:`HealthTracker` computes:

* **Relative embedding error** (fig05): ``|predicted - actual| /
  actual`` over a seed-derived sample of node pairs, where the
  prediction is the coordinate distance (``||xi - xj|| + hi + hj``) and
  the actual RTT comes from a ``true_rtt`` oracle when one exists (the
  simulation knows its dataset) or from the first observed epoch's
  predictions otherwise (self-reference: the serving store can still
  detect *corruption* of a stream whose geometry should be stable).
  The headline median/p95 are windowed over the last ``window`` epochs.
* **Drift** (fig07): centroid velocity (displacement of the population
  centroid per unit time) plus the per-node displacement distribution
  between consecutive epochs, recorded into a fixed-bucket histogram so
  shard-wise computations merge exactly.
* **Neighbor-set churn**: for a seed-derived sample of nodes, the
  fraction of each node's k nearest neighbors (in coordinate space)
  replaced since the previous epoch -- embedding stability as an
  application would feel it.

Everything is deterministic: the pair/target samples derive from
``(seed, label)`` via :func:`~repro.stats.sampling.derive_rng`, no wall
clock is read, and all histograms use fixed bucket schemes, so two
seeded runs produce byte-identical snapshots, summaries, event logs and
Prometheus text -- and per-shard displacement histograms merge into
exactly the single-tracker histogram (both properties are pinned by
tests).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.events import EventLog
from repro.obs.registry import BucketScheme, LatencyHistogram, TelemetryRegistry
from repro.stats.sampling import derive_rng

__all__ = [
    "DISPLACEMENT_SCHEME",
    "ERROR_SCHEME",
    "HealthSnapshot",
    "HealthTracker",
]

#: Relative error is dimensionless and spans machine epsilon (a healthy
#: self-referenced stream) to O(100) (a badly corrupted embedding).
ERROR_SCHEME = BucketScheme(lo=1e-6, per_decade=10, decades=8)

#: Per-epoch node displacement in coordinate milliseconds.
DISPLACEMENT_SCHEME = BucketScheme(lo=1e-3, per_decade=10, decades=7)

#: Guard against division by a zero "actual" RTT.
_EPSILON = 1e-9


@dataclass(frozen=True, slots=True)
class HealthSnapshot:
    """One epoch's health read-out (JSON-safe via :meth:`to_dict`)."""

    epoch: int
    version: Optional[int]
    time_s: Optional[float]
    nodes: int
    #: This epoch's relative-error sample percentiles (None before the
    #: first epoch with a usable pair sample).
    relative_error_median: Optional[float]
    relative_error_p95: Optional[float]
    relative_error_mean: Optional[float]
    #: Centroid displacement per unit time since the previous epoch.
    drift_velocity: Optional[float]
    #: Per-node displacement distribution since the previous epoch.
    displacement_median: Optional[float]
    displacement_p95: Optional[float]
    #: Fraction of sampled nodes' k nearest neighbors replaced.
    neighbor_churn: Optional[float]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "version": self.version,
            "time_s": self.time_s,
            "nodes": self.nodes,
            "relative_error_median": self.relative_error_median,
            "relative_error_p95": self.relative_error_p95,
            "relative_error_mean": self.relative_error_mean,
            "drift_velocity": self.drift_velocity,
            "displacement_median": self.displacement_median,
            "displacement_p95": self.displacement_p95,
            "neighbor_churn": self.neighbor_churn,
        }


def _as_float(value: Optional[np.floating]) -> Optional[float]:
    return None if value is None else float(value)


class HealthTracker:
    """Incremental per-epoch coordinate-health computation.

    Feed it every published epoch via :meth:`observe_epoch`; read the
    latest :class:`HealthSnapshot`, the aggregate :meth:`summary`, or
    the registered gauges/histograms.  One tracker observes one
    coordinate stream; it is not thread-safe (publishes are already
    serialised by their store's ingest lock).

    ``true_rtt(node_a, node_b, time_s) -> float`` supplies ground-truth
    RTTs when the owner has them (the simulation's dataset).  Without
    it, the first observed epoch's predicted distances become the
    reference -- relative error then measures deviation from the
    initially-published geometry, which is exactly the corruption
    signal a serving store can compute without an oracle.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        sample_pairs: int = 128,
        knn_k: int = 8,
        knn_sample: int = 32,
        window: int = 64,
        registry: Optional[TelemetryRegistry] = None,
        events: Optional[EventLog] = None,
        true_rtt: Optional[Callable[[str, str, float], float]] = None,
        label: str = "health",
        max_snapshots: int = 4096,
    ) -> None:
        if sample_pairs < 1:
            raise ValueError("sample_pairs must be >= 1")
        if knn_k < 1 or knn_sample < 1:
            raise ValueError("knn_k and knn_sample must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.seed = seed
        self.sample_pairs = sample_pairs
        self.knn_k = knn_k
        self.knn_sample = knn_sample
        self.window = window
        self.label = label
        self.true_rtt = true_rtt
        self.events = events
        self.registry = registry if registry is not None else TelemetryRegistry()

        # Seed-derived samples, materialised on the first observed epoch
        # (the population defines the sample space).
        self._pair_ids: Optional[List[Tuple[str, str]]] = None
        self._knn_target_ids: Optional[List[str]] = None
        self._reference: Optional[np.ndarray] = None

        # Previous-epoch state for the incremental deltas.
        self._prev_ids: Optional[Tuple[str, ...]] = None
        self._prev_index_of: Optional[Dict[str, int]] = None
        self._prev_components: Optional[np.ndarray] = None
        self._prev_heights: Optional[np.ndarray] = None
        self._prev_centroid: Optional[np.ndarray] = None
        self._prev_time: Optional[float] = None
        self._prev_knn: Dict[str, frozenset] = {}

        # Aggregates.
        self._epochs = 0
        self._last: Optional[HealthSnapshot] = None
        self._path_ms = 0.0
        self._drift_dt = 0.0
        self._churn_sum = 0.0
        self._churn_epochs = 0
        self._error_window: deque = deque(maxlen=window)
        self.snapshots: deque = deque(maxlen=max_snapshots)

        # Instruments (fixed names + schemes: merges and Prometheus
        # renders stay byte-deterministic).
        self._g_err_median = self.registry.gauge(
            "health_relative_error_median",
            "Windowed median relative embedding error (fig05, live).",
        )
        self._g_err_p95 = self.registry.gauge(
            "health_relative_error_p95",
            "Windowed p95 relative embedding error (fig05, live).",
        )
        self._g_drift = self.registry.gauge(
            "health_drift_velocity_ms",
            "Centroid displacement per unit time (fig07, live).",
        )
        self._g_churn = self.registry.gauge(
            "health_neighbor_churn",
            "Fraction of sampled nodes' k nearest neighbors replaced.",
        )
        self._c_epochs = self.registry.counter(
            "health_epochs_total", "Epochs observed by the health tracker."
        )
        self._h_error = self.registry.histogram(
            "health_relative_error",
            "Per-pair relative embedding error, all observed epochs.",
            scheme=ERROR_SCHEME,
        )
        self._h_displacement = self.registry.histogram(
            "health_node_displacement_ms",
            "Per-node displacement between consecutive epochs.",
            scheme=DISPLACEMENT_SCHEME,
        )

    # ------------------------------------------------------------------
    # Sampling (first epoch)
    # ------------------------------------------------------------------
    def _materialise_samples(self, node_ids: Sequence[str]) -> None:
        n = len(node_ids)
        pairs: List[Tuple[str, str]] = []
        if n >= 2:
            rng = derive_rng(self.seed, f"{self.label}:pairs")
            count = min(self.sample_pairs, n * (n - 1) // 2)
            first = rng.integers(0, n, size=count)
            offset = rng.integers(1, n, size=count)
            second = (first + offset) % n
            pairs = [
                (node_ids[int(a)], node_ids[int(b)])
                for a, b in zip(first, second)
            ]
        self._pair_ids = pairs
        targets: List[str] = []
        if n >= 2:
            rng = derive_rng(self.seed, f"{self.label}:knn")
            chosen = rng.choice(n, size=min(self.knn_sample, n), replace=False)
            targets = [node_ids[int(row)] for row in np.sort(chosen)]
        self._knn_target_ids = targets

    # ------------------------------------------------------------------
    # The per-epoch observation
    # ------------------------------------------------------------------
    def observe_epoch(
        self,
        node_ids: Sequence[str],
        components: np.ndarray,
        heights: Optional[np.ndarray] = None,
        *,
        version: Optional[int] = None,
        time_s: Optional[float] = None,
    ) -> HealthSnapshot:
        """Fold one published epoch into the health stream."""
        ids = tuple(node_ids)
        components = np.asarray(components, dtype=np.float64)
        if components.ndim != 2 or components.shape[0] != len(ids):
            raise ValueError(
                f"components must be ({len(ids)}, d); got {components.shape}"
            )
        heights = (
            np.zeros(len(ids))
            if heights is None
            else np.asarray(heights, dtype=np.float64)
        )
        if heights.shape != (len(ids),):
            raise ValueError(f"heights must be ({len(ids)},); got {heights.shape}")
        if self._pair_ids is None:
            self._materialise_samples(ids)
        if self._prev_index_of is not None and ids == self._prev_ids:
            index_of = self._prev_index_of
        else:
            index_of = {node_id: row for row, node_id in enumerate(ids)}

        errors = self._observe_errors(index_of, components, heights, time_s)
        drift_velocity, disp_median, disp_p95 = self._observe_drift(
            ids, index_of, components, heights, time_s
        )
        churn = self._observe_churn(ids, index_of, components, heights)

        self._epochs += 1
        self._c_epochs.inc()
        if errors is not None and errors.size:
            window_values = np.concatenate(list(self._error_window))
            self._g_err_median.set(float(np.percentile(window_values, 50.0)))
            self._g_err_p95.set(float(np.percentile(window_values, 95.0)))
        if drift_velocity is not None:
            self._g_drift.set(drift_velocity)
        if churn is not None:
            self._g_churn.set(churn)

        snapshot = HealthSnapshot(
            epoch=self._epochs,
            version=version,
            time_s=time_s,
            nodes=len(ids),
            relative_error_median=(
                _as_float(np.percentile(errors, 50.0))
                if errors is not None and errors.size
                else None
            ),
            relative_error_p95=(
                _as_float(np.percentile(errors, 95.0))
                if errors is not None and errors.size
                else None
            ),
            relative_error_mean=(
                _as_float(np.mean(errors))
                if errors is not None and errors.size
                else None
            ),
            drift_velocity=drift_velocity,
            displacement_median=disp_median,
            displacement_p95=disp_p95,
            neighbor_churn=churn,
        )
        self._last = snapshot
        self.snapshots.append(snapshot)
        if self.events is not None:
            self.events.emit("health_snapshot", **snapshot.to_dict())

        self._prev_ids = ids
        self._prev_index_of = index_of
        self._prev_components = components
        self._prev_heights = heights
        self._prev_time = time_s
        return snapshot

    # -- relative error -------------------------------------------------
    def _observe_errors(
        self,
        index_of: Dict[str, int],
        components: np.ndarray,
        heights: np.ndarray,
        time_s: Optional[float],
    ) -> Optional[np.ndarray]:
        assert self._pair_ids is not None
        pairs = [
            (index_of[a], index_of[b])
            for a, b in self._pair_ids
            if a in index_of and b in index_of
        ]
        if not pairs:
            return None
        rows_a = np.fromiter((a for a, _ in pairs), dtype=np.int64)
        rows_b = np.fromiter((b for _, b in pairs), dtype=np.int64)
        delta = components[rows_a] - components[rows_b]
        predicted = np.sqrt(np.sum(delta * delta, axis=1))
        predicted = predicted + heights[rows_a] + heights[rows_b]
        if self.true_rtt is not None:
            at = 0.0 if time_s is None else float(time_s)
            ids = list(self._pair_ids)
            actual = np.fromiter(
                (
                    self.true_rtt(a, b, at)
                    for a, b in ids
                    if a in index_of and b in index_of
                ),
                dtype=np.float64,
                count=len(pairs),
            )
        else:
            if self._reference is None:
                # Self-reference mode: this first epoch *is* the truth.
                self._reference = predicted
            actual = self._reference
            if actual.shape != predicted.shape:
                # Population changed under self-reference; re-anchor.
                self._reference = predicted
                actual = predicted
        errors = np.abs(predicted - actual) / np.maximum(actual, _EPSILON)
        self._error_window.append(errors)
        self._h_error.observe_many(errors)
        return errors

    # -- drift ----------------------------------------------------------
    def _observe_drift(
        self,
        ids: Tuple[str, ...],
        index_of: Dict[str, int],
        components: np.ndarray,
        heights: np.ndarray,
        time_s: Optional[float],
    ) -> Tuple[Optional[float], Optional[float], Optional[float]]:
        centroid = components.mean(axis=0) if components.shape[0] else None
        drift_velocity: Optional[float] = None
        disp_median: Optional[float] = None
        disp_p95: Optional[float] = None
        if (
            centroid is not None
            and self._prev_centroid is not None
            and centroid.shape == self._prev_centroid.shape
        ):
            dt = 1.0
            if (
                time_s is not None
                and self._prev_time is not None
                and time_s > self._prev_time
            ):
                dt = time_s - self._prev_time
            step = float(np.linalg.norm(centroid - self._prev_centroid))
            drift_velocity = step / dt
            self._path_ms += step
            self._drift_dt += dt
        if self._prev_ids is not None and self._prev_components is not None:
            if self._prev_ids == ids:
                delta = components - self._prev_components
                dh = heights - self._prev_heights
            else:
                prev_index = {
                    node_id: row for row, node_id in enumerate(self._prev_ids)
                }
                common = [nid for nid in ids if nid in prev_index]
                if not common:
                    self._prev_centroid = centroid
                    return drift_velocity, None, None
                now_rows = np.fromiter(
                    (index_of[nid] for nid in common), dtype=np.int64
                )
                prev_rows = np.fromiter(
                    (prev_index[nid] for nid in common), dtype=np.int64
                )
                delta = components[now_rows] - self._prev_components[prev_rows]
                dh = heights[now_rows] - self._prev_heights[prev_rows]
            displacement = np.sqrt(np.sum(delta * delta, axis=1)) + np.abs(dh)
            if displacement.size:
                disp_median = float(np.percentile(displacement, 50.0))
                disp_p95 = float(np.percentile(displacement, 95.0))
                self._h_displacement.observe_many(displacement)
        self._prev_centroid = centroid
        return drift_velocity, disp_median, disp_p95

    # -- neighbor churn --------------------------------------------------
    def _observe_churn(
        self,
        ids: Tuple[str, ...],
        index_of: Dict[str, int],
        components: np.ndarray,
        heights: np.ndarray,
    ) -> Optional[float]:
        assert self._knn_target_ids is not None
        if len(ids) < 2 or not self._knn_target_ids:
            return None
        k = min(self.knn_k, len(ids) - 1)
        current: Dict[str, frozenset] = {}
        for target in self._knn_target_ids:
            row = index_of.get(target)
            if row is None:
                continue
            delta = components - components[row]
            distances = np.sqrt(np.sum(delta * delta, axis=1))
            distances = distances + heights + heights[row]
            distances[row] = np.inf
            nearest = np.argpartition(distances, k - 1)[:k]
            current[target] = frozenset(ids[int(idx)] for idx in nearest)
        churn: Optional[float] = None
        if self._prev_knn:
            shared = [t for t in current if t in self._prev_knn]
            if shared:
                replaced = [
                    1.0 - len(current[t] & self._prev_knn[t]) / max(len(current[t]), 1)
                    for t in shared
                ]
                churn = float(np.mean(replaced))
                self._churn_sum += churn
                self._churn_epochs += 1
        self._prev_knn = current
        return churn

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------
    @property
    def epochs(self) -> int:
        return self._epochs

    @property
    def last(self) -> Optional[HealthSnapshot]:
        return self._last

    @property
    def error_histogram(self) -> LatencyHistogram:
        return self._h_error

    @property
    def displacement_histogram(self) -> LatencyHistogram:
        return self._h_displacement

    def windowed_error_percentile(self, percentile: float) -> Optional[float]:
        """Exact percentile over the last ``window`` epochs' error samples."""
        if not self._error_window:
            return None
        values = np.concatenate(list(self._error_window))
        if not values.size:
            return None
        return float(np.percentile(values, percentile))

    def windowed_error_mean(self) -> Optional[float]:
        if not self._error_window:
            return None
        values = np.concatenate(list(self._error_window))
        if not values.size:
            return None
        return float(np.mean(values))

    def mean_drift_velocity(self) -> Optional[float]:
        """Centroid path length over elapsed drift time (fig07's headline)."""
        if self._drift_dt <= 0.0:
            return None
        return self._path_ms / self._drift_dt

    def summary(self) -> Dict[str, Any]:
        """The JSON-safe health section embedded in reports and payloads.

        Every value is a pure function of the observed epoch stream (no
        wall clock), so seeded runs produce byte-identical summaries.
        """
        last = self._last
        return {
            "epochs": self._epochs,
            "window": self.window,
            "nodes": last.nodes if last is not None else 0,
            "version": last.version if last is not None else None,
            "mode": "oracle" if self.true_rtt is not None else "self-reference",
            "relative_error": {
                "median": self.windowed_error_percentile(50.0),
                "p95": self.windowed_error_percentile(95.0),
                "mean": self.windowed_error_mean(),
                "count": self._h_error.count,
                "sample_pairs": len(self._pair_ids or ()),
            },
            "drift": {
                "velocity": last.drift_velocity if last is not None else None,
                "mean_velocity": self.mean_drift_velocity(),
                "path_ms": self._path_ms,
                "displacement_median": (
                    last.displacement_median if last is not None else None
                ),
                "displacement_p95": (
                    last.displacement_p95 if last is not None else None
                ),
                "displacement_quantiles": self._h_displacement.quantile_summary(),
            },
            "neighbor_churn": {
                "last": last.neighbor_churn if last is not None else None,
                "mean": (
                    self._churn_sum / self._churn_epochs
                    if self._churn_epochs
                    else None
                ),
                "k": self.knn_k,
                "sample": len(self._knn_target_ids or ()),
            },
        }

    def metrics_summary(self, prefix: str = "health_") -> Dict[str, Optional[float]]:
        """Flat scalar view for scenario metrics dictionaries."""
        last = self._last
        return {
            f"{prefix}epochs": float(self._epochs),
            f"{prefix}relative_error_median": self.windowed_error_percentile(50.0),
            f"{prefix}relative_error_p95": self.windowed_error_percentile(95.0),
            f"{prefix}drift_velocity": (
                last.drift_velocity if last is not None else None
            ),
            f"{prefix}drift_mean_velocity": self.mean_drift_velocity(),
            f"{prefix}displacement_p95": (
                last.displacement_p95 if last is not None else None
            ),
            f"{prefix}neighbor_churn": (
                last.neighbor_churn if last is not None else None
            ),
        }

    # ------------------------------------------------------------------
    # Shard-wise merging
    # ------------------------------------------------------------------
    @staticmethod
    def merged_displacement(
        trackers: Sequence["HealthTracker"],
    ) -> LatencyHistogram:
        """Fold per-shard displacement histograms into one.

        Per-node displacement depends only on that node's own rows, so
        trackers fed disjoint node partitions merge into exactly the
        histogram a single tracker over the union stream records (the
        fixed bucket scheme makes the merge bucket-wise exact).
        """
        merged = LatencyHistogram(
            "health_node_displacement_ms", scheme=DISPLACEMENT_SCHEME
        )
        for tracker in trackers:
            merged.merge(tracker.displacement_histogram)
        return merged
