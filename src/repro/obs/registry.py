"""The process-wide telemetry registry: counters, gauges, histograms.

The paper's whole evaluation argues about *distributions* -- stability and
accuracy are judged by CDFs and tails, never means -- so the serving
stack's observability layer is built around the same idea: the primary
latency instrument is a **mergeable log-spaced-bucket histogram** rather
than a rolling average.

Three instrument kinds:

* :class:`Counter` -- a monotonic count (requests served, errors, ...).
* :class:`Gauge` -- a point-in-time value (in-flight requests, open
  connections), with a ``update_max`` helper for high-water marks.
* :class:`LatencyHistogram` -- observations bucketed on **fixed**
  log-spaced boundaries shared by every histogram built from the same
  :class:`BucketScheme`.  Because the boundaries are fixed (never adapted
  to the data), two histograms recorded by different runs, shards, or
  processes merge *exactly*: ``merge`` is plain bucket-count addition,
  and ``histogram(A ++ B) == merge(histogram(A), histogram(B))`` bit for
  bit.  Percentiles (p50/p90/p99/p999) are read straight from the bucket
  counts and are within one bucket width of the exact sample percentile
  (cross-checked against :class:`~repro.stats.percentile
  .StreamingPercentile` in the tests).

Instruments are created (or fetched) from a :class:`TelemetryRegistry`
keyed on ``(name, labels)``; every instrument is internally locked, so
any number of serving threads can record concurrently without sharing the
owner's locks.  :meth:`TelemetryRegistry.render_prometheus` renders the
whole registry in the Prometheus text exposition format with fully
deterministic ordering and float formatting: the same recorded values
always produce byte-identical text.

A process-wide default registry backs the module-level helpers in
:mod:`repro.obs`; components that need isolation (one registry per store,
per planner, per load run) construct their own.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "BucketScheme",
    "Counter",
    "DEFAULT_SCHEME",
    "Gauge",
    "LatencyHistogram",
    "TelemetryRegistry",
]


# ----------------------------------------------------------------------
# Bucket scheme
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BucketScheme:
    """Fixed log-spaced bucket boundaries for mergeable histograms.

    Boundaries are ``lo * 10**(i / per_decade)`` for
    ``i in [0, per_decade * decades]`` -- a pure function of the three
    parameters, so every histogram built from an equal scheme has
    *identical* boundaries and merges exactly.  The default (20 buckets
    per decade over 8 decades from 1 microsecond, in milliseconds) gives
    a bucket-width growth factor of ``10**(1/20) ~ 1.122``: bucket-read
    percentiles land within ~12% (one bucket) of the exact value.
    """

    lo: float = 1e-3
    per_decade: int = 20
    decades: int = 8

    def __post_init__(self) -> None:
        if self.lo <= 0.0:
            raise ValueError("lo must be positive")
        if self.per_decade < 1 or self.decades < 1:
            raise ValueError("per_decade and decades must be >= 1")

    @property
    def growth(self) -> float:
        """The multiplicative width of one bucket."""
        return 10.0 ** (1.0 / self.per_decade)

    def boundaries(self) -> Tuple[float, ...]:
        """Upper bucket edges (cached per scheme instance)."""
        cached = getattr(self, "_boundaries", None)
        if cached is None:
            cached = tuple(
                self.lo * 10.0 ** (i / self.per_decade)
                for i in range(self.per_decade * self.decades + 1)
            )
            object.__setattr__(self, "_boundaries", cached)
        return cached

    @property
    def bucket_count(self) -> int:
        """Finite buckets plus the overflow (+Inf) bucket."""
        return len(self.boundaries()) + 1

    def bucket_index(self, value: float) -> int:
        """The bucket holding ``value``: first edge with ``value <= edge``."""
        return bisect_left(self.boundaries(), value)

    def boundaries_array(self) -> "np.ndarray":
        """The boundaries as a float64 array (cached per scheme instance)."""
        cached = getattr(self, "_boundaries_array", None)
        if cached is None:
            cached = np.asarray(self.boundaries(), dtype=np.float64)
            cached.setflags(write=False)
            object.__setattr__(self, "_boundaries_array", cached)
        return cached

    def to_dict(self) -> Dict[str, Any]:
        return {"lo": self.lo, "per_decade": self.per_decade, "decades": self.decades}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BucketScheme":
        return cls(
            lo=float(payload["lo"]),
            per_decade=int(payload["per_decade"]),
            decades=int(payload["decades"]),
        )


#: The repo-wide default: 1 microsecond .. 100 seconds, in milliseconds.
DEFAULT_SCHEME = BucketScheme()


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class Counter:
    """A monotonic counter."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; use a Gauge to go down")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def update_max(self, value: float) -> None:
        """High-water-mark update: keep the larger of current and ``value``."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        return self._value


class LatencyHistogram:
    """A mergeable histogram over fixed log-spaced buckets.

    Values land in the bucket whose upper edge is the first boundary
    ``>= value`` (Prometheus ``le`` semantics); values beyond the last
    boundary land in the overflow (+Inf) bucket.  Because the boundaries
    are fixed by the :class:`BucketScheme`, :meth:`merge` is exact bucket
    addition -- shard histograms combine into precisely the histogram a
    single store would have recorded for the union stream.
    """

    __slots__ = ("name", "labels", "scheme", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(
        self,
        name: str = "",
        labels: Tuple[Tuple[str, Any], ...] = (),
        scheme: BucketScheme = DEFAULT_SCHEME,
    ) -> None:
        self.name = name
        self.labels = labels
        self.scheme = scheme
        self._counts = [0] * scheme.bucket_count
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        with self._lock:
            self._counts[self.scheme.bucket_index(value)] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of values under one lock acquisition.

        Buckets, count, and min/max land exactly as per-value
        :meth:`observe` calls would; the running sum uses ``math.fsum``
        over the batch (at least as accurate as sequential addition).
        One lock acquisition amortises the array-sized batches the
        health tracker records per epoch.
        """
        if isinstance(values, np.ndarray):
            array = np.asarray(values, dtype=np.float64).ravel()
        else:
            array = np.asarray([float(value) for value in values], dtype=np.float64)
        if array.size == 0:
            return
        if np.isnan(array).any():
            raise ValueError("cannot observe NaN")
        # searchsorted(side="left") is exactly bisect_left, so buckets land
        # precisely where per-value observe() would put them.
        indices = np.searchsorted(self.scheme.boundaries_array(), array, side="left")
        increments = np.bincount(indices, minlength=len(self._counts))
        low = float(array.min())
        high = float(array.max())
        batch_sum = math.fsum(array.tolist())
        with self._lock:
            counts = self._counts
            for index in np.nonzero(increments)[0]:
                counts[int(index)] += int(increments[index])
            if low < self._min:
                self._min = low
            if high > self._max:
                self._max = high
            self._count += int(array.size)
            self._sum += batch_sum

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram (exact; ``other`` untouched)."""
        if other.scheme != self.scheme:
            raise ValueError(
                "cannot merge histograms with different bucket schemes: "
                f"{self.scheme} vs {other.scheme}"
            )
        with other._lock:
            counts = list(other._counts)
            count, total = other._count, other._sum
            low, high = other._min, other._max
        with self._lock:
            for index, bucket in enumerate(counts):
                self._counts[index] += bucket
            self._count += count
            self._sum += total
            if low < self._min:
                self._min = low
            if high > self._max:
                self._max = high

    # -- reading --------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min

    @property
    def max(self) -> float:
        return self._max

    def bucket_counts(self) -> List[int]:
        """A copy of the per-bucket counts (last entry is the overflow)."""
        return list(self._counts)

    def _edge_of_rank(self, rank: int) -> float:
        """Upper bucket edge of the ``rank``-th (1-indexed) order statistic."""
        boundaries = self.scheme.boundaries()
        cumulative = 0
        for index, bucket in enumerate(self._counts):
            cumulative += bucket
            if cumulative >= rank:
                if index >= len(boundaries):  # overflow bucket
                    return self._max
                return boundaries[index]
        return self._max  # pragma: no cover - rank is clamped by callers

    def percentile(self, percentile: float) -> float:
        """The percentile read from bucket edges (within one bucket width).

        Uses the same rank convention as ``np.percentile`` (linear
        interpolation on ``(n - 1) * p / 100``), with each order statistic
        replaced by its bucket's upper edge, clamped to the observed
        maximum -- so the result is deterministic, merge-stable, and at
        most one multiplicative bucket width above the exact sample
        percentile.
        """
        if self._count == 0:
            raise ValueError("no observations have been recorded yet")
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        position = (self._count - 1) * percentile / 100.0
        lower_rank = int(math.floor(position)) + 1
        upper_rank = int(math.ceil(position)) + 1
        fraction = position - math.floor(position)
        lower = self._edge_of_rank(lower_rank)
        value = lower if fraction == 0.0 else (
            lower * (1.0 - fraction) + self._edge_of_rank(upper_rank) * fraction
        )
        return min(value, self._max)

    def quantile_summary(self) -> Dict[str, Optional[float]]:
        """The tail read-out used in reports: p50 / p90 / p99 / p999.

        A histogram with no observations yields all-``None`` values (JSON
        ``null``) rather than raising or leaking NaN into report JSON --
        report assembly runs unconditionally over whatever instruments
        exist, including ones nothing has recorded into yet.
        """
        if self._count == 0:
            return {"p50": None, "p90": None, "p99": None, "p999": None}
        return {
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
        }

    # -- wire form ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (sparse bucket counts; exact round-trip)."""
        with self._lock:
            return {
                "scheme": self.scheme.to_dict(),
                "counts": {
                    str(index): bucket
                    for index, bucket in enumerate(self._counts)
                    if bucket
                },
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
            }

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], *, name: str = "", labels: Tuple[Tuple[str, Any], ...] = ()
    ) -> "LatencyHistogram":
        histogram = cls(name, labels, BucketScheme.from_dict(payload["scheme"]))
        for index, bucket in payload.get("counts", {}).items():
            histogram._counts[int(index)] = int(bucket)
        histogram._count = int(payload["count"])
        histogram._sum = float(payload["sum"])
        if payload.get("min") is not None:
            histogram._min = float(payload["min"])
        if payload.get("max") is not None:
            histogram._max = float(payload["max"])
        return histogram


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def _label_key(labels: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(labels.items()))


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_number(value: Any) -> str:
    """Deterministic sample formatting: ints bare, floats via repr."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_labels(labels: Tuple[Tuple[str, Any], ...], extra: str = "") -> str:
    parts = [f'{key}="{_escape_label(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class TelemetryRegistry:
    """A named collection of instruments with deterministic rendering.

    ``spans_enabled`` governs whether :meth:`span` (see
    :mod:`repro.obs.tracing`) records anything: when disabled and no
    explicit trace recorder is passed, a span is a shared no-op context
    manager -- a single attribute check of overhead.
    """

    def __init__(self, *, spans_enabled: bool = False) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], Any] = {}
        self._help: Dict[str, str] = {}
        self.spans_enabled = spans_enabled

    # -- instrument factories (get-or-create) ---------------------------
    def _get_or_create(
        self,
        kind: type,
        name: str,
        help: str,
        labels: Mapping[str, Any],
        scheme: BucketScheme = DEFAULT_SCHEME,
    ):
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = (
                    kind(name, key[1])
                    if kind is not LatencyHistogram
                    else LatencyHistogram(name, key[1], scheme)
                )
                self._instruments[key] = instrument
                if help and name not in self._help:
                    self._help[name] = help
            elif not isinstance(instrument, kind):
                raise ValueError(
                    f"instrument {name!r}{dict(key[1])!r} already registered "
                    f"as {type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self, name: str, help: str = "", scheme: BucketScheme = DEFAULT_SCHEME, **labels: Any
    ) -> LatencyHistogram:
        histogram = self._get_or_create(LatencyHistogram, name, help, labels, scheme)
        if histogram.scheme != scheme:
            raise ValueError(
                f"histogram {name!r} already registered with a different scheme"
            )
        return histogram

    def span(self, name: str, trace: Any = None, **labels: Any):
        """A timed span context manager (see :mod:`repro.obs.tracing`)."""
        from repro.obs.tracing import make_span

        return make_span(self, name, trace, labels)

    def enable_spans(self, enabled: bool = True) -> None:
        self.spans_enabled = enabled

    # -- introspection --------------------------------------------------
    def instruments(self) -> List[Any]:
        with self._lock:
            return [
                self._instruments[key] for key in sorted(self._instruments, key=repr)
            ]

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe dump of every instrument's current state."""
        payload: Dict[str, Any] = {}
        for instrument in self.instruments():
            entry_key = instrument.name + _render_labels(instrument.labels)
            if isinstance(instrument, LatencyHistogram):
                payload[entry_key] = instrument.to_dict()
            else:
                payload[entry_key] = instrument.value
        return payload

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()
            self._help.clear()

    # -- Prometheus text rendering --------------------------------------
    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format.

        Families sort by name, series by label tuple, and every float
        renders via ``repr`` -- the output is a pure function of the
        recorded values, so identical recordings give byte-identical text
        (the property the telemetry determinism tests pin down).
        """
        families: Dict[str, List[Any]] = {}
        for instrument in self.instruments():
            families.setdefault(instrument.name, []).append(instrument)
        lines: List[str] = []
        for name in sorted(families):
            series = sorted(families[name], key=lambda inst: inst.labels)
            kind = (
                "counter"
                if isinstance(series[0], Counter)
                else "histogram"
                if isinstance(series[0], LatencyHistogram)
                else "gauge"
            )
            help_text = self._help.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for instrument in series:
                if isinstance(instrument, LatencyHistogram):
                    self._render_histogram(lines, instrument)
                else:
                    lines.append(
                        f"{name}{_render_labels(instrument.labels)} "
                        f"{_format_number(instrument.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def _render_histogram(lines: List[str], histogram: LatencyHistogram) -> None:
        boundaries = histogram.scheme.boundaries()
        with histogram._lock:
            counts = list(histogram._counts)
            total, sum_ = histogram._count, histogram._sum
        cumulative = 0
        for index, bucket in enumerate(counts[:-1]):
            if not bucket:
                continue  # sparse: only edges that gained observations
            cumulative += bucket
            edge = 'le="' + repr(boundaries[index]) + '"'
            lines.append(
                f"{histogram.name}_bucket"
                f"{_render_labels(histogram.labels, edge)} {cumulative}"
            )
        inf_edge = 'le="+Inf"'
        lines.append(
            f"{histogram.name}_bucket"
            f"{_render_labels(histogram.labels, inf_edge)} {total}"
        )
        lines.append(
            f"{histogram.name}_sum{_render_labels(histogram.labels)} "
            f"{_format_number(sum_)}"
        )
        lines.append(
            f"{histogram.name}_count{_render_labels(histogram.labels)} {total}"
        )


def render_prometheus(registry: TelemetryRegistry) -> str:
    """Module-level convenience mirroring the method."""
    return registry.render_prometheus()
