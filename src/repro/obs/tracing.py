"""Lightweight trace spans for the serving request path.

A span times one named stage of a request::

    with registry.span("query.scatter", shard=3):
        ...

and records the elapsed wall-clock milliseconds into a ``span_ms``
histogram labelled by span name (plus any extra labels).  Two design
points keep this safe to leave in hot paths:

* **Near-zero overhead when disabled.**  When the owning registry has
  ``spans_enabled == False`` and no trace recorder is attached,
  :func:`make_span` returns one shared no-op context manager -- no
  allocation, no clock reads; the cost is a flag check.
* **Explicit trace propagation.**  Per-request tracing hands a
  :class:`TraceRecorder` down the call chain as an argument rather than
  via ``contextvars`` -- the daemon executes queries with
  ``loop.run_in_executor``, and context variables do not follow values
  across executor threads.  A request carrying ``"trace": true`` gets a
  recorder, every span it passes through appends a stage entry, and the
  stages come back in the response payload.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional

__all__ = ["TraceRecorder", "make_span"]


class TraceRecorder:
    """Collects per-stage durations for one traced request.

    Appends are guarded only by the GIL; a single request's spans are
    recorded either on the event loop or on the one executor thread
    serving it, so entries stay ordered within each thread of execution.
    """

    __slots__ = ("stages",)

    def __init__(self) -> None:
        self.stages: List[Dict[str, Any]] = []

    def record(self, name: str, labels: Mapping[str, Any], elapsed_ms: float) -> None:
        entry: Dict[str, Any] = {"stage": name}
        entry.update(labels)
        entry["ms"] = round(elapsed_ms, 4)
        self.stages.append(entry)

    def as_payload(self) -> List[Dict[str, Any]]:
        """The JSON-safe stage list attached to traced responses."""
        return list(self.stages)


class _NoopSpan:
    """The shared do-nothing span used whenever recording is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span: times the block, feeds the registry and any trace."""

    __slots__ = ("_registry", "_name", "_trace", "_labels", "_started")

    def __init__(
        self,
        registry: Any,
        name: str,
        trace: Optional[TraceRecorder],
        labels: Mapping[str, Any],
    ) -> None:
        self._registry = registry
        self._name = name
        self._trace = trace
        self._labels = labels
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        elapsed_ms = (time.perf_counter() - self._started) * 1e3
        if self._registry.spans_enabled:
            self._registry.histogram(
                "span_ms",
                "Per-stage span durations in milliseconds.",
                span=self._name,
                **self._labels,
            ).observe(elapsed_ms)
        if self._trace is not None:
            self._trace.record(self._name, self._labels, elapsed_ms)


def make_span(
    registry: Any,
    name: str,
    trace: Optional[TraceRecorder],
    labels: Mapping[str, Any],
):
    """Build a span for ``registry`` (no-op unless recording somewhere)."""
    if not registry.spans_enabled and trace is None:
        return NOOP_SPAN
    return _Span(registry, name, trace, labels)
