"""A bounded, deterministic structured event log (JSONL).

Telemetry instruments (:mod:`repro.obs.registry`) answer "how much / how
fast"; this module answers "what happened, in what order".  The serving
stack emits a small set of discrete lifecycle events -- an epoch was
published, a generation was swapped in, admission control shed a
request, a shard raised an error, a health snapshot was taken -- and
operators read them back as JSON lines, over the wire (the daemon's
``events`` op) or on disk (``repro load --events-out``).

Design constraints, in order:

* **Deterministic.**  An event is a pure record of its emission: a
  stream-order sequence number plus caller-supplied fields.  No wall
  clock is read unless the owner injects one, so a seeded run emits a
  byte-identical log every time (the determinism tests pin this).
* **Bounded.**  The log is a ring of ``capacity`` events; old events are
  dropped, counted, and reported (``dropped``), never silently lost
  without trace.  Emission is O(1) and never blocks serving.
* **Structured.**  Every event is one flat JSON object:
  ``{"seq": N, "kind": "...", ...fields}``.  ``to_jsonl`` renders with
  sorted keys and compact separators, so equal logs are byte-equal.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

__all__ = ["EVENT_KINDS", "EventLog"]

#: The well-known event kinds emitted by the serving stack.  The log
#: accepts any kind string -- this tuple documents the vocabulary and
#: anchors the wire/docs contract.
EVENT_KINDS = (
    "epoch_published",
    "generation_swapped",
    "admission_shed",
    "shard_error",
    "health_snapshot",
    # Chaos (deterministic fault injection) lifecycle:
    "fault_injected",
    "fault_cleared",
    "shard_killed",
    "shard_restarted",
    "publish_dropped",
    "publish_stalled",
)


class EventLog:
    """A thread-safe bounded ring of structured events.

    ``clock`` is optional; when provided, each event carries a ``ts``
    field read from it at emission.  Leaving it unset (the default)
    keeps the log a pure function of the emission stream -- the property
    the byte-determinism tests rely on.
    """

    __slots__ = ("_events", "_seq", "_dropped", "_capacity", "_clock", "_lock")

    def __init__(
        self,
        capacity: int = 4096,
        *,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0
        self._clock = clock
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, kind: str, /, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the stored record (shared, do not mutate).

        ``kind`` is positional-only so a caller passing a ``kind=...``
        field hits the reserved-name check instead of a ``TypeError``.
        """
        if not kind:
            raise ValueError("event kind must be a non-empty string")
        if "seq" in fields or "kind" in fields:
            raise ValueError("'seq' and 'kind' are reserved event fields")
        event: Dict[str, Any] = {"kind": kind}
        if self._clock is not None:
            event["ts"] = self._clock()
        event.update(fields)
        with self._lock:
            event["seq"] = self._seq
            self._seq += 1
            if len(self._events) == self._capacity:
                self._dropped += 1
            self._events.append(event)
        return event

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def emitted(self) -> int:
        """Total events ever emitted (including dropped ones)."""
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted by the capacity bound."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def tail(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent ``limit`` events (all retained when None), oldest first."""
        if limit is not None and limit < 0:
            raise ValueError("limit must be >= 0")
        with self._lock:
            events = list(self._events)
        if limit is not None:
            events = events[-limit:] if limit else []
        return [dict(event) for event in events]

    def to_jsonl(self, limit: Optional[int] = None) -> str:
        """The retained events as JSON lines (sorted keys; byte-stable)."""
        lines = [
            json.dumps(event, sort_keys=True, separators=(",", ":"))
            for event in self.tail(limit)
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: Path, limit: Optional[int] = None) -> None:
        """Write the retained events to ``path`` as JSON lines."""
        Path(path).write_text(self.to_jsonl(limit))

    def stats(self) -> Dict[str, int]:
        """JSON-safe bookkeeping: emitted / retained / dropped / capacity."""
        with self._lock:
            return {
                "emitted": self._seq,
                "retained": len(self._events),
                "dropped": self._dropped,
                "capacity": self._capacity,
            }
