"""Tail-regression analysis over histogram telemetry reports.

The CI regression gate (`benchmarks/check_regression.py`) historically
compared throughput ratios only, so a p99 blowup -- say during shard
rollover -- would merge clean as long as mean throughput held.  This
module closes that hole: it diffs the **latency histograms** embedded in
two load-run reports (the ``telemetry`` sections written by
``repro load --out`` and by ``benchmarks/bench_server.py``) and flags
distribution changes that a mean or a throughput ratio cannot see.

Two scale-invariant checks per (section, query-kind) pair, chosen so the
gate survives baselines recorded on different hardware:

* **Tail amplification** -- ``p99 / p50`` and ``p999 / p50``.  Dividing
  by the median cancels machine speed; what remains is the *shape* of
  the tail.  The gate fails when the current amplification exceeds the
  baseline amplification by more than ``tail_ratio_limit``.
* **Bucket-shape shift** -- bucket frequency vectors are aligned by
  shifting the current histogram by the whole-bucket offset of the
  medians (again cancelling uniform machine-speed scaling), then
  compared by total-variation distance.  A bimodal stall mode or a
  fattened tail moves mass between buckets and trips this even when the
  percentile summary happens to straddle it.

Both checks are direction-aware: getting *faster* than baseline never
fails.  Sections with fewer than ``min_count`` observations are skipped
rather than judged on noise.

Alongside the tail gate, an **accuracy gate** diffs the ``health``
sections the same reports embed (see :mod:`repro.obs.health`): the
coordinate-quality scalars -- windowed median/p95/mean relative
embedding error and drift velocity -- may not *degrade* versus the
committed baseline.  The check is direction-aware (a more accurate or
more stable embedding never fails) and tolerance-floored (an absolute
``atol`` keeps near-machine-epsilon baselines from tripping on
platform-level float noise).  Reports without health sections pass
vacuously, so pre-health baselines stay accepted.

Run standalone::

    python -m repro.obs.regression BASELINE.json CURRENT.json

Exit status: 0 clean, 1 tail/accuracy regression found, 2 usage/input
error.  The same comparisons are invoked in-process by
``benchmarks/check_regression.py`` for ``server_load`` artifacts.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Tuple

from repro.obs.registry import LatencyHistogram

__all__ = [
    "AccuracyThresholds",
    "Thresholds",
    "collect_health_sections",
    "collect_telemetry_sections",
    "compare_health",
    "compare_health_payloads",
    "compare_histograms",
    "compare_payloads",
    "compare_telemetry",
    "main",
]


@dataclass(frozen=True)
class Thresholds:
    """Gate limits; defaults are deliberately generous.

    A committed baseline re-checked on a different CI runner sees
    scheduling jitter worth tens of percent; a genuine tail regression
    (a lock convoy, a stall during rollover) shifts p99/p50 by integer
    factors.  The defaults sit between the two.
    """

    #: Fail when current tail amplification > baseline amplification x this.
    tail_ratio_limit: float = 2.5
    #: Fail when median-aligned bucket total-variation distance > this.
    shift_limit: float = 0.6
    #: Skip sections with fewer observations than this (too noisy to judge).
    min_count: int = 100


def _amplification(histogram: LatencyHistogram, percentile: float) -> float:
    median = histogram.percentile(50.0)
    if median <= 0.0:
        return math.nan
    return histogram.percentile(percentile) / median


def _aligned_total_variation(
    baseline: LatencyHistogram, current: LatencyHistogram
) -> float:
    """TV distance between bucket frequencies after median alignment."""
    base_median = baseline.percentile(50.0)
    cur_median = current.percentile(50.0)
    if base_median <= 0.0 or cur_median <= 0.0:
        return 0.0
    growth = baseline.scheme.growth
    offset = round(math.log(cur_median / base_median) / math.log(growth))
    base_counts = baseline.bucket_counts()
    cur_counts = current.bucket_counts()
    size = len(base_counts)
    distance = 0.0
    for index in range(size):
        base_freq = base_counts[index] / baseline.count
        shifted = index + offset
        cur_freq = (
            cur_counts[shifted] / current.count if 0 <= shifted < size else 0.0
        )
        distance += abs(base_freq - cur_freq)
    return 0.5 * distance


def compare_histograms(
    baseline: LatencyHistogram,
    current: LatencyHistogram,
    *,
    context: str,
    thresholds: Thresholds = Thresholds(),
) -> List[str]:
    """Findings (empty when clean) for one baseline/current histogram pair."""
    if baseline.count < thresholds.min_count or current.count < thresholds.min_count:
        return []
    findings: List[str] = []
    for percentile, label in ((99.0, "p99"), (99.9, "p999")):
        base_amp = _amplification(baseline, percentile)
        cur_amp = _amplification(current, percentile)
        if math.isnan(base_amp) or math.isnan(cur_amp):
            continue
        if cur_amp > base_amp * thresholds.tail_ratio_limit:
            findings.append(
                f"{context}: {label}/p50 amplification {cur_amp:.2f} exceeds "
                f"baseline {base_amp:.2f} by more than the "
                f"x{thresholds.tail_ratio_limit:g} limit "
                f"({label}={current.percentile(percentile):.4g} ms, "
                f"p50={current.percentile(50.0):.4g} ms)"
            )
    shift = _aligned_total_variation(baseline, current)
    if shift > thresholds.shift_limit:
        findings.append(
            f"{context}: median-aligned bucket distribution moved "
            f"(total-variation {shift:.3f} > limit {thresholds.shift_limit:g})"
        )
    return findings


def compare_telemetry(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    *,
    context: str = "telemetry",
    thresholds: Thresholds = Thresholds(),
) -> List[str]:
    """Compare two report ``telemetry`` sections kind by kind."""
    findings: List[str] = []
    base_kinds = baseline.get("kinds", {})
    cur_kinds = current.get("kinds", {})
    for kind in sorted(set(base_kinds) & set(cur_kinds)):
        base_hist = base_kinds[kind].get("histogram")
        cur_hist = cur_kinds[kind].get("histogram")
        if not base_hist or not cur_hist:
            continue
        findings.extend(
            compare_histograms(
                LatencyHistogram.from_dict(base_hist),
                LatencyHistogram.from_dict(cur_hist),
                context=f"{context}[{kind}]",
                thresholds=thresholds,
            )
        )
    return findings


def collect_telemetry_sections(
    document: Any, path: str = ""
) -> Dict[str, Mapping[str, Any]]:
    """Every ``telemetry`` section in a JSON document, keyed by its path.

    Walks the document recursively, so the same analyzer consumes bare
    ``repro load --out`` reports (telemetry at the top level) and
    ``bench_server`` artifacts (one section per shard record plus the
    ingest leg) without shape-specific plumbing.
    """
    sections: Dict[str, Mapping[str, Any]] = {}
    if isinstance(document, Mapping):
        telemetry = document.get("telemetry")
        if isinstance(telemetry, Mapping) and isinstance(
            telemetry.get("kinds"), Mapping
        ):
            sections[path or "<root>"] = telemetry
        for key, value in document.items():
            if key == "telemetry":
                continue
            child = f"{path}.{key}" if path else str(key)
            sections.update(collect_telemetry_sections(value, child))
    elif isinstance(document, list):
        for index, value in enumerate(document):
            sections.update(collect_telemetry_sections(value, f"{path}[{index}]"))
    return sections


def compare_payloads(
    baseline: Any,
    current: Any,
    *,
    thresholds: Thresholds = Thresholds(),
) -> Tuple[List[str], int]:
    """Compare every telemetry section shared by two report documents.

    Returns ``(findings, compared_sections)``; a pair of documents with
    no shared telemetry compares zero sections and passes vacuously (old
    baselines recorded before telemetry existed stay accepted).
    """
    base_sections = collect_telemetry_sections(baseline)
    cur_sections = collect_telemetry_sections(current)
    findings: List[str] = []
    shared = sorted(set(base_sections) & set(cur_sections))
    for path in shared:
        findings.extend(
            compare_telemetry(
                base_sections[path],
                cur_sections[path],
                context=path,
                thresholds=thresholds,
            )
        )
    return findings, len(shared)


# ----------------------------------------------------------------------
# Accuracy gate (coordinate health)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AccuracyThresholds:
    """Limits for the coordinate-accuracy gate.

    Degradation is judged multiplicatively (``current > baseline x
    limit``) with an absolute floor: a healthy self-referenced stream
    has baseline relative error near machine epsilon (~1e-16), where
    BLAS-level float differences across platforms produce huge *ratios*
    on meaningless absolute changes.  ``atol`` keeps those runs clean
    while still catching real corruption, which moves the error by
    orders of magnitude past any floor.
    """

    #: Fail when a gated metric exceeds baseline by more than this factor...
    degradation_limit: float = 1.5
    #: ...and by more than this absolute amount.
    atol: float = 1e-6


#: The health-section scalars the accuracy gate compares, as
#: (path-into-section, human label).  Lower is better for all of them.
_HEALTH_GATED_METRICS: Tuple[Tuple[Tuple[str, ...], str], ...] = (
    (("relative_error", "median"), "median relative error"),
    (("relative_error", "p95"), "p95 relative error"),
    (("relative_error", "mean"), "mean relative error"),
    (("drift", "mean_velocity"), "mean drift velocity"),
)


def _health_metric(section: Mapping[str, Any], path: Tuple[str, ...]) -> Any:
    node: Any = section
    for key in path:
        if not isinstance(node, Mapping):
            return None
        node = node.get(key)
    return node


def compare_health(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    *,
    context: str = "health",
    thresholds: AccuracyThresholds = AccuracyThresholds(),
) -> List[str]:
    """Findings (empty when clean) for one baseline/current health pair.

    Direction-aware: only *degradation* (current worse than baseline by
    more than the limit and the absolute floor) fails; improvement and
    metrics absent on either side are accepted.
    """
    findings: List[str] = []
    for path, label in _HEALTH_GATED_METRICS:
        base_value = _health_metric(baseline, path)
        cur_value = _health_metric(current, path)
        if base_value is None or cur_value is None:
            continue
        base_value = float(base_value)
        cur_value = float(cur_value)
        if math.isnan(base_value) or math.isnan(cur_value):
            continue
        allowed = max(
            base_value * thresholds.degradation_limit,
            base_value + thresholds.atol,
        )
        if cur_value > allowed:
            findings.append(
                f"{context}: {label} degraded to {cur_value:.4g} "
                f"(baseline {base_value:.4g}, limit "
                f"x{thresholds.degradation_limit:g} + atol "
                f"{thresholds.atol:g})"
            )
    return findings


def collect_health_sections(
    document: Any, path: str = ""
) -> Dict[str, Mapping[str, Any]]:
    """Every ``health`` section in a JSON document, keyed by its path.

    Mirrors :func:`collect_telemetry_sections`: the recursive walk
    consumes ``repro load`` reports, ``bench_server`` artifacts, and
    daemon health payloads without shape-specific plumbing.  A mapping
    counts as a health section when it carries a ``relative_error``
    mapping (the one field every :meth:`HealthTracker.summary` has).
    """
    sections: Dict[str, Mapping[str, Any]] = {}
    if isinstance(document, Mapping):
        health = document.get("health")
        if isinstance(health, Mapping) and isinstance(
            health.get("relative_error"), Mapping
        ):
            sections[path or "<root>"] = health
        for key, value in document.items():
            if key == "health":
                continue
            child = f"{path}.{key}" if path else str(key)
            sections.update(collect_health_sections(value, child))
    elif isinstance(document, list):
        for index, value in enumerate(document):
            sections.update(collect_health_sections(value, f"{path}[{index}]"))
    return sections


def compare_health_payloads(
    baseline: Any,
    current: Any,
    *,
    thresholds: AccuracyThresholds = AccuracyThresholds(),
) -> Tuple[List[str], int]:
    """Compare every health section shared by two report documents.

    Returns ``(findings, compared_sections)``; documents with no shared
    health sections pass vacuously (baselines recorded before health
    telemetry existed stay accepted).
    """
    base_sections = collect_health_sections(baseline)
    cur_sections = collect_health_sections(current)
    findings: List[str] = []
    shared = sorted(set(base_sections) & set(cur_sections))
    for path in shared:
        findings.extend(
            compare_health(
                base_sections[path],
                cur_sections[path],
                context=path,
                thresholds=thresholds,
            )
        )
    return findings, len(shared)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regression",
        description=(
            "Diff the latency-histogram telemetry of two load-run reports "
            "and fail on tail regressions."
        ),
    )
    parser.add_argument("baseline", type=Path, help="baseline report JSON")
    parser.add_argument("current", type=Path, help="current report JSON")
    parser.add_argument(
        "--tail-ratio-limit",
        type=float,
        default=Thresholds.tail_ratio_limit,
        help="max allowed growth factor of p99/p50 and p999/p50 "
        "amplification vs baseline (default %(default)s)",
    )
    parser.add_argument(
        "--shift-limit",
        type=float,
        default=Thresholds.shift_limit,
        help="max allowed median-aligned total-variation distance "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--min-count",
        type=int,
        default=Thresholds.min_count,
        help="skip histograms with fewer observations (default %(default)s)",
    )
    parser.add_argument(
        "--degradation-limit",
        type=float,
        default=AccuracyThresholds.degradation_limit,
        help="max allowed growth factor of gated health metrics vs "
        "baseline (default %(default)s)",
    )
    parser.add_argument(
        "--accuracy-atol",
        type=float,
        default=AccuracyThresholds.atol,
        help="absolute degradation floor for the accuracy gate "
        "(default %(default)s)",
    )
    args = parser.parse_args(argv)
    thresholds = Thresholds(
        tail_ratio_limit=args.tail_ratio_limit,
        shift_limit=args.shift_limit,
        min_count=args.min_count,
    )
    accuracy = AccuracyThresholds(
        degradation_limit=args.degradation_limit,
        atol=args.accuracy_atol,
    )
    try:
        baseline = json.loads(args.baseline.read_text())
        current = json.loads(args.current.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tail_findings, compared = compare_payloads(
        baseline, current, thresholds=thresholds
    )
    health_findings, health_compared = compare_health_payloads(
        baseline, current, thresholds=accuracy
    )
    status = 0
    if tail_findings:
        print(f"TAIL REGRESSION ({len(tail_findings)} finding(s)):")
        for finding in tail_findings:
            print(f"  - {finding}")
        status = 1
    else:
        print(f"tail gate clean ({compared} telemetry section(s) compared)")
    if health_findings:
        print(f"ACCURACY REGRESSION ({len(health_findings)} finding(s)):")
        for finding in health_findings:
            print(f"  - {finding}")
        status = 1
    else:
        print(
            f"accuracy gate clean ({health_compared} health section(s) compared)"
        )
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
