"""Wilcoxon rank-sum (Mann-Whitney U) two-sample test.

Kifer, Ben-David and Gehrke's change-detection framework (which Section V-A
of the paper adopts) compares the start and current windows with "one of a
handful of standard techniques (e.g., rank-sum)".  Those standard tests are
one-dimensional; the paper's contribution is to swap in multi-dimensional
tests (RELATIVE's centroid displacement and ENERGY's energy distance).  The
rank-sum test is still provided here because:

* it is the natural change detector for *scalar* streams (e.g. a single
  link's latency), used by the ablation benchmarks;
* it lets tests verify that our window bookkeeping reproduces the original
  Kifer et al. behaviour on 1-D data.

Implemented with the normal approximation (with tie correction and
continuity correction), which is accurate for the window sizes used here
(>= 8 per window).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["RankSumResult", "rank_sum_test"]


@dataclass(frozen=True, slots=True)
class RankSumResult:
    """Outcome of a rank-sum test."""

    u_statistic: float
    z_score: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the two samples differ at significance level ``alpha``."""
        return self.p_value < alpha


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal distribution."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def rank_sum_test(sample_a: Iterable[float], sample_b: Iterable[float]) -> RankSumResult:
    """Two-sided Wilcoxon rank-sum test for two independent samples."""
    a = np.asarray(list(sample_a), dtype=float)
    b = np.asarray(list(sample_b), dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("rank-sum test requires two non-empty samples")

    combined = np.concatenate([a, b])
    order = combined.argsort(kind="mergesort")
    ranks = np.empty_like(order, dtype=float)
    ranks[order] = np.arange(1, combined.size + 1, dtype=float)

    # Average ranks for ties.
    sorted_values = combined[order]
    i = 0
    while i < sorted_values.size:
        j = i
        while j + 1 < sorted_values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        if j > i:
            tie_rank = (i + j + 2) / 2.0  # ranks are 1-based
            ranks[order[i : j + 1]] = tie_rank
        i = j + 1

    n1 = a.size
    n2 = b.size
    rank_sum_a = float(ranks[:n1].sum())
    u_a = rank_sum_a - n1 * (n1 + 1) / 2.0
    mean_u = n1 * n2 / 2.0

    # Tie correction for the variance.
    _, tie_counts = np.unique(combined, return_counts=True)
    tie_term = float(((tie_counts**3 - tie_counts).sum()))
    n = n1 + n2
    variance = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1))) if n > 1 else 0.0

    if variance <= 0.0:
        # All values identical: no evidence of difference.
        return RankSumResult(u_statistic=u_a, z_score=0.0, p_value=1.0)

    # Continuity correction toward the mean.
    correction = 0.5 if u_a != mean_u else 0.0
    z = (u_a - mean_u - math.copysign(correction, u_a - mean_u)) / math.sqrt(variance)
    p_value = 2.0 * _normal_sf(abs(z))
    p_value = min(1.0, max(0.0, p_value))
    return RankSumResult(u_statistic=u_a, z_score=z, p_value=p_value)
