"""Percentile summaries, boxplot statistics, and streaming estimation.

Figure 4 of the paper reports the per-link prediction error of the MP
filter as boxplots (median, quartiles, whiskers, outlier counts); the
:func:`boxplot_summary` helper reproduces those statistics.  The
:class:`StreamingPercentile` estimator supports long-running metric
collection without retaining every sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["BoxplotSummary", "boxplot_summary", "StreamingPercentile"]


@dataclass(frozen=True, slots=True)
class BoxplotSummary:
    """The five-number summary plus outlier accounting used in Figure 4."""

    count: int
    minimum: float
    lower_quartile: float
    median: float
    upper_quartile: float
    maximum: float
    #: Whisker positions at 1.5 IQR (clipped to observed data).
    lower_whisker: float
    upper_whisker: float
    #: Samples beyond the whiskers.
    outlier_count: int

    @property
    def interquartile_range(self) -> float:
        return self.upper_quartile - self.lower_quartile


def boxplot_summary(values: Iterable[float]) -> BoxplotSummary:
    """Compute boxplot statistics for a non-empty collection."""
    data = np.asarray(sorted(float(v) for v in values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarise an empty collection")
    q1, median, q3 = np.percentile(data, [25.0, 50.0, 75.0])
    iqr = q3 - q1
    lower_fence = q1 - 1.5 * iqr
    upper_fence = q3 + 1.5 * iqr
    in_fence = data[(data >= lower_fence) & (data <= upper_fence)]
    lower_whisker = float(in_fence[0]) if in_fence.size else float(data[0])
    upper_whisker = float(in_fence[-1]) if in_fence.size else float(data[-1])
    outliers = int(((data < lower_fence) | (data > upper_fence)).sum())
    return BoxplotSummary(
        count=int(data.size),
        minimum=float(data[0]),
        lower_quartile=float(q1),
        median=float(median),
        upper_quartile=float(q3),
        maximum=float(data[-1]),
        lower_whisker=lower_whisker,
        upper_whisker=upper_whisker,
        outlier_count=outliers,
    )


class StreamingPercentile:
    """Reservoir-sampled percentile estimator for unbounded streams.

    Keeps a uniform random reservoir of at most ``capacity`` samples
    (Vitter's Algorithm R) and answers percentile queries against it.  For
    the experiment scales used here (10^4-10^6 samples per metric) a
    reservoir of a few thousand points estimates the median and the 95th
    percentile to well within the reporting precision of the paper's
    figures.

    **Exactness cutoff.** Until ``capacity`` observations have been added
    the reservoir holds *every* sample, so percentile queries are exact --
    they equal ``np.percentile`` over the full stream, bit for bit.  From
    observation ``capacity + 1`` on, Algorithm R starts evicting uniformly
    at random and answers become estimates whose error shrinks with
    ``capacity``.  :attr:`is_exact` reports which side of the cutoff the
    stream is on; consumers that need guaranteed-exact tails (the query
    service's per-query-type p99 stats, benchmark reports) size ``capacity``
    above their worst-case sample count and assert on it.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._reservoir: List[float] = []
        self._seen = 0
        #: Set by a sampled-mode merge: the reservoir no longer holds
        #: every observation even if the count is below capacity.
        self._forced_sampled = False
        self._rng = np.random.default_rng(seed)

    def add(self, value: float) -> None:
        """Add one observation to the stream."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot add NaN to a percentile stream")
        self._seen += 1
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(value)
            return
        index = int(self._rng.integers(0, self._seen))
        if index < self.capacity:
            self._reservoir[index] = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "StreamingPercentile") -> None:
        """Fold another estimator's stream into this one.

        Lets each worker (an executor thread, a shard process) keep a
        private lock-free estimator and combine them only at read time.
        ``other`` is never mutated.

        **Exact mode.**  When both estimators are still exact and the
        combined stream fits in this reservoir's ``capacity``, the merge
        concatenates the reservoirs: the result holds every observation
        of both streams, so it remains exact and -- percentiles being
        order-independent -- answers identically to a single estimator
        fed the union stream.

        **Sampled mode.**  Otherwise the merged reservoir is built by
        weighted sampling: each slot draws from one of the two reservoirs
        with probability proportional to the stream size it represents,
        which keeps every original observation's inclusion probability
        uniform.  The result is an estimate, and :attr:`is_exact` goes
        false.
        """
        if other._seen == 0:
            return
        combined = self._seen + other._seen
        if self.is_exact and other.is_exact and combined <= self.capacity:
            self._reservoir.extend(other._reservoir)
            self._seen = combined
            return
        pool_self = list(self._reservoir)
        pool_other = list(other._reservoir)
        size = min(self.capacity, len(pool_self) + len(pool_other))
        weight_self = self._seen / combined if combined else 0.0
        merged: List[float] = []
        for _ in range(size):
            use_self = pool_self and (
                not pool_other or self._rng.random() < weight_self
            )
            pool = pool_self if use_self else pool_other
            merged.append(pool.pop(int(self._rng.integers(0, len(pool)))))
        self._reservoir = merged
        self._seen = combined
        # The reservoir no longer holds every sample, whatever the count.
        self._forced_sampled = True

    @property
    def count(self) -> int:
        """Total observations seen (not the reservoir size)."""
        return self._seen

    @property
    def is_exact(self) -> bool:
        """True while the reservoir still holds every observation.

        Holds while ``count <= capacity`` and no sampled-mode
        :meth:`merge` has run: no sample has been evicted yet, so
        :meth:`percentile` is the exact percentile of the full stream
        rather than a reservoir estimate.
        """
        return not self._forced_sampled and self._seen <= self.capacity

    def percentile(self, percentile: float) -> float:
        """The requested percentile of everything seen so far.

        Exact while :attr:`is_exact` is true; a reservoir estimate after
        the stream crosses the ``capacity`` cutoff.
        """
        if not self._reservoir:
            raise ValueError("no observations have been added yet")
        return float(np.percentile(self._reservoir, percentile))

    def median(self) -> float:
        return self.percentile(50.0)

    def snapshot(self) -> Sequence[float]:
        """A copy of the current reservoir (for diagnostics/tests)."""
        return list(self._reservoir)
