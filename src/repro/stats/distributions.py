"""Empirical distributions and summary statistics for reporting.

Most of the paper's results are reported as cumulative distribution
functions (per-node median relative error, 95th-percentile relative error,
instability) or as medians of those per-node distributions.
:class:`EmpiricalCDF` captures a sample and answers both "what fraction of
nodes are below x" and "what is the p-th percentile", which is all the
figures need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["EmpiricalCDF", "summarize", "histogram_counts", "LOG_BUCKETS_MS"]


#: The latency buckets of the paper's Figure 2 histogram (milliseconds).
LOG_BUCKETS_MS: Tuple[Tuple[float, float], ...] = (
    (0.0, 100.0),
    (100.0, 200.0),
    (200.0, 300.0),
    (300.0, 400.0),
    (400.0, 500.0),
    (500.0, 600.0),
    (600.0, 700.0),
    (700.0, 800.0),
    (800.0, 900.0),
    (900.0, 1000.0),
    (1000.0, 2000.0),
    (2000.0, 3000.0),
    (3000.0, float("inf")),
)


class EmpiricalCDF:
    """Empirical cumulative distribution function over a finite sample."""

    def __init__(self, values: Iterable[float]) -> None:
        data = np.asarray(sorted(float(v) for v in values), dtype=float)
        if data.size == 0:
            raise ValueError("an empirical CDF needs at least one observation")
        self._data = data

    @property
    def count(self) -> int:
        return int(self._data.size)

    def fraction_below(self, threshold: float) -> float:
        """P(X <= threshold) under the empirical distribution."""
        return float(np.searchsorted(self._data, threshold, side="right")) / self._data.size

    def fraction_above(self, threshold: float) -> float:
        """P(X > threshold)."""
        return 1.0 - self.fraction_below(threshold)

    def percentile(self, percentile: float) -> float:
        return float(np.percentile(self._data, percentile))

    def median(self) -> float:
        return self.percentile(50.0)

    def values(self) -> np.ndarray:
        """A copy of the sorted sample."""
        return self._data.copy()

    def points(self, max_points: int = 200) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs, decimated for plotting/printing."""
        n = self._data.size
        if n <= max_points:
            indices = np.arange(n)
        else:
            indices = np.linspace(0, n - 1, max_points).astype(int)
        return [
            (float(self._data[i]), float((i + 1) / n))
            for i in indices
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"EmpiricalCDF(n={self.count}, median={self.median():.3g}, "
            f"p95={self.percentile(95):.3g})"
        )


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Standard summary used in reports: count, mean, median, p95, max."""
    data = np.asarray([float(v) for v in values], dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarise an empty collection")
    return {
        "count": float(data.size),
        "mean": float(data.mean()),
        "median": float(np.percentile(data, 50.0)),
        "p25": float(np.percentile(data, 25.0)),
        "p75": float(np.percentile(data, 75.0)),
        "p95": float(np.percentile(data, 95.0)),
        "min": float(data.min()),
        "max": float(data.max()),
    }


def histogram_counts(
    values: Iterable[float],
    buckets: Sequence[Tuple[float, float]] = LOG_BUCKETS_MS,
) -> List[Tuple[Tuple[float, float], int]]:
    """Count samples per bucket (used for the Figure 2/3 histograms)."""
    data = np.asarray([float(v) for v in values], dtype=float)
    results: List[Tuple[Tuple[float, float], int]] = []
    for low, high in buckets:
        if np.isinf(high):
            count = int((data >= low).sum())
        else:
            count = int(((data >= low) & (data < high)).sum())
        results.append(((low, high), count))
    return results
