"""Seeded random-number-generator helpers.

Every stochastic component in the library takes an explicit seed or RNG so
experiments are exactly reproducible.  These helpers derive independent
generators from a base seed and a string label, avoiding the classic
pitfall of sequentially numbered seeds producing correlated streams.
"""

from __future__ import annotations

import hashlib
from typing import List

import numpy as np

__all__ = ["derive_rng", "spawn_rngs", "derive_seed"]


def derive_seed(base_seed: int, label: str) -> int:
    """Derive a 64-bit seed from a base seed and a label, deterministically."""
    key = f"{base_seed}:{label}".encode()
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")


def derive_rng(base_seed: int, label: str) -> np.random.Generator:
    """A generator whose stream is independent of other labels' streams."""
    return np.random.default_rng(derive_seed(base_seed, label))


def spawn_rngs(base_seed: int, count: int, label: str = "stream") -> List[np.random.Generator]:
    """``count`` independent generators derived from one base seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [derive_rng(base_seed, f"{label}:{index}") for index in range(count)]
