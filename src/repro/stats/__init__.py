"""Statistical helpers shared by the core algorithms and the analysis code.

* :mod:`repro.stats.percentile` -- percentile summaries, boxplot statistics,
  and a streaming reservoir-backed percentile estimator.
* :mod:`repro.stats.ranksum` -- the Wilcoxon rank-sum (Mann-Whitney U) test,
  the one-dimensional change-detection test referenced from Kifer et al.
* :mod:`repro.stats.distributions` -- empirical CDFs and summary utilities
  used to report the paper's CDF figures.
* :mod:`repro.stats.sampling` -- seeded RNG construction helpers.
"""

from __future__ import annotations

from repro.stats.distributions import EmpiricalCDF, summarize
from repro.stats.percentile import BoxplotSummary, StreamingPercentile, boxplot_summary
from repro.stats.ranksum import RankSumResult, rank_sum_test
from repro.stats.sampling import derive_rng, spawn_rngs

__all__ = [
    "BoxplotSummary",
    "EmpiricalCDF",
    "RankSumResult",
    "StreamingPercentile",
    "boxplot_summary",
    "derive_rng",
    "rank_sum_test",
    "spawn_rngs",
    "summarize",
]
