"""Per-node relative-error accounting.

The paper measures *per-node* relative error rather than per-link error:
the distribution of a node's errors over all of its observations.  A static
per-link ground truth does not exist under real conditions (the "true"
latency is itself a distribution), so error is always computed against the
observation that triggered it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

__all__ = ["relative_error", "absolute_error", "NodeAccuracy", "AccuracyAggregator"]


def absolute_error(predicted_ms: float, observed_ms: float) -> float:
    """``e = | ||x_i - x_j|| - l_ij |`` for one observation."""
    return abs(float(predicted_ms) - float(observed_ms))


def relative_error(predicted_ms: float, observed_ms: float) -> float:
    """Relative error of one observation, the paper's accuracy metric.

    ``observed_ms`` is clamped away from zero to keep the ratio finite for
    degenerate (sub-microsecond) observations.
    """
    observed = max(float(observed_ms), 1e-3)
    return abs(float(predicted_ms) - observed) / observed


class NodeAccuracy:
    """Accumulates one node's relative-error observations."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self._errors: List[float] = []

    def record(self, predicted_ms: float, observed_ms: float) -> float:
        """Record one observation; returns the relative error."""
        error = relative_error(predicted_ms, observed_ms)
        self._errors.append(error)
        return error

    def record_error(self, error: float) -> None:
        """Record an already-computed relative error."""
        if error < 0.0:
            raise ValueError("relative errors are non-negative")
        self._errors.append(float(error))

    @property
    def count(self) -> int:
        return len(self._errors)

    def median(self) -> Optional[float]:
        """Median relative error, or ``None`` with no observations."""
        if not self._errors:
            return None
        return float(np.percentile(self._errors, 50.0))

    def percentile(self, percentile: float) -> Optional[float]:
        if not self._errors:
            return None
        return float(np.percentile(self._errors, percentile))

    def errors(self) -> List[float]:
        return list(self._errors)

    def reset(self) -> None:
        self._errors.clear()


class AccuracyAggregator:
    """Per-node accuracy accounting for a whole system."""

    def __init__(self) -> None:
        self._nodes: Dict[str, NodeAccuracy] = {}

    def node(self, node_id: str) -> NodeAccuracy:
        accuracy = self._nodes.get(node_id)
        if accuracy is None:
            accuracy = NodeAccuracy(node_id)
            self._nodes[node_id] = accuracy
        return accuracy

    def record(self, node_id: str, predicted_ms: float, observed_ms: float) -> float:
        return self.node(node_id).record(predicted_ms, observed_ms)

    def record_error(self, node_id: str, error: float) -> None:
        self.node(node_id).record_error(error)

    def per_node_medians(self) -> Dict[str, float]:
        """Median relative error for every node with at least one observation."""
        return {
            node_id: median
            for node_id, acc in self._nodes.items()
            if (median := acc.median()) is not None
        }

    def per_node_percentiles(self, percentile: float) -> Dict[str, float]:
        return {
            node_id: value
            for node_id, acc in self._nodes.items()
            if (value := acc.percentile(percentile)) is not None
        }

    def median_of_medians(self) -> Optional[float]:
        """The headline number in Table I: median over nodes of median error."""
        medians = list(self.per_node_medians().values())
        if not medians:
            return None
        return float(np.percentile(medians, 50.0))

    def node_ids(self) -> List[str]:
        return list(self._nodes)

    def reset(self) -> None:
        self._nodes.clear()
