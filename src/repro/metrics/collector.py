"""System-wide metric collection for simulator and trace-replay runs.

The collector receives one call per processed latency observation and keeps
enough state to answer every question the paper's figures ask:

* per-node median / 95th-percentile relative error, at the system and at the
  application level (Figures 5, 11, 13, Table I);
* per-node and aggregate instability (ms of coordinate movement per second)
  for both coordinate levels (Figures 5, 8-13, Table I);
* application update frequency -- the fraction of nodes whose application
  coordinate changed per second (Figure 9);
* time series of the above over fixed intervals (Figure 14).

A ``measurement_start_s`` cut-off lets experiments discard start-up effects,
matching the paper's practice of reporting the second half of each run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.coordinate import Coordinate
from repro.metrics.stability import StabilityTracker

__all__ = ["MetricsCollector", "NodeMetricsSnapshot", "SystemSnapshot"]


@dataclass(frozen=True, slots=True)
class NodeMetricsSnapshot:
    """Summary of one node over the measurement interval."""

    node_id: str
    observation_count: int
    median_relative_error: Optional[float]
    p95_relative_error: Optional[float]
    median_application_error: Optional[float]
    p95_application_error: Optional[float]
    system_instability_ms_per_s: float
    application_instability_ms_per_s: float
    application_updates: int


@dataclass(frozen=True, slots=True)
class SystemSnapshot:
    """System-wide summary over the measurement interval."""

    node_count: int
    duration_s: float
    median_of_median_error: Optional[float]
    median_of_p95_error: Optional[float]
    median_of_median_application_error: Optional[float]
    median_of_p95_application_error: Optional[float]
    aggregate_system_instability: float
    aggregate_application_instability: float
    median_node_system_instability: float
    median_node_application_instability: float
    application_updates_per_node_per_s: float


class _NodeRecord:
    """Mutable per-node accumulation (internal)."""

    __slots__ = (
        "node_id",
        "system_errors",
        "application_errors",
        "system_stability",
        "application_stability",
        "application_update_times",
        "observation_count",
    )

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.system_errors: List[Tuple[float, float]] = []
        self.application_errors: List[Tuple[float, float]] = []
        self.system_stability = StabilityTracker(node_id)
        self.application_stability = StabilityTracker(node_id)
        self.application_update_times: List[float] = []
        self.observation_count = 0


class MetricsCollector:
    """Collects accuracy and stability metrics during a run."""

    def __init__(self, measurement_start_s: float = 0.0) -> None:
        if measurement_start_s < 0.0:
            raise ValueError("measurement_start_s must be non-negative")
        self.measurement_start_s = measurement_start_s
        self._nodes: Dict[str, _NodeRecord] = {}
        self._first_time_s: Optional[float] = None
        self._last_time_s: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record_for(self, node_id: str) -> _NodeRecord:
        record = self._nodes.get(node_id)
        if record is None:
            record = _NodeRecord(node_id)
            self._nodes[node_id] = record
        return record

    def record_sample(
        self,
        time_s: float,
        node_id: str,
        *,
        system_coordinate: Coordinate,
        application_coordinate: Coordinate,
        relative_error: Optional[float] = None,
        application_relative_error: Optional[float] = None,
        application_updated: bool = False,
    ) -> None:
        """Record the outcome of one processed observation at ``time_s``."""
        record = self._record_for(node_id)
        record.observation_count += 1
        if self._first_time_s is None:
            self._first_time_s = time_s
        self._last_time_s = time_s

        # Stability must track every movement, including before the
        # measurement window, so that the "previous coordinate" is correct
        # when the window opens; the reporting helpers filter by time.
        record.system_stability.record(time_s, system_coordinate)
        record.application_stability.record(time_s, application_coordinate)

        if time_s >= self.measurement_start_s:
            if relative_error is not None:
                record.system_errors.append((time_s, float(relative_error)))
            if application_relative_error is not None:
                record.application_errors.append((time_s, float(application_relative_error)))
            if application_updated:
                record.application_update_times.append(time_s)

    # ------------------------------------------------------------------
    # Interval bookkeeping
    # ------------------------------------------------------------------
    @property
    def observed_duration_s(self) -> float:
        if self._first_time_s is None or self._last_time_s is None:
            return 0.0
        return max(0.0, self._last_time_s - self._first_time_s)

    def _measurement_bounds(self) -> Tuple[float, float]:
        start = max(self.measurement_start_s, self._first_time_s or 0.0)
        end = self._last_time_s if self._last_time_s is not None else start
        return start, max(start, end)

    @property
    def measurement_duration_s(self) -> float:
        start, end = self._measurement_bounds()
        return end - start

    def node_ids(self) -> List[str]:
        return list(self._nodes)

    def latest_coordinates(self, *, level: str = "application") -> Dict[str, Coordinate]:
        """Each node's most recently recorded coordinate at ``level``.

        This is the ingest feed of the coordinate query service
        (:mod:`repro.service.snapshot`): a collector attached to a netsim
        or replay run exposes the live coordinate of every node it has
        seen, and the snapshot store turns successive reads into versioned
        point-in-time views.  Nodes that have not recorded any coordinate
        yet are omitted.
        """
        results: Dict[str, Coordinate] = {}
        for node_id, record in self._nodes.items():
            tracker = (
                record.system_stability if level == "system" else record.application_stability
            )
            if tracker.latest is not None:
                results[node_id] = tracker.latest
        return results

    # ------------------------------------------------------------------
    # Per-node summaries
    # ------------------------------------------------------------------
    @staticmethod
    def _percentile_of_errors(
        errors: List[Tuple[float, float]], percentile: float
    ) -> Optional[float]:
        if not errors:
            return None
        values = [e for _, e in errors]
        return float(np.percentile(values, percentile))

    def per_node_error_percentile(
        self, percentile: float, *, level: str = "system"
    ) -> Dict[str, float]:
        """Per-node percentile of relative error over the measurement window."""
        results: Dict[str, float] = {}
        for node_id, record in self._nodes.items():
            errors = record.system_errors if level == "system" else record.application_errors
            value = self._percentile_of_errors(errors, percentile)
            if value is not None:
                results[node_id] = value
        return results

    def per_node_median_error(self, *, level: str = "system") -> Dict[str, float]:
        return self.per_node_error_percentile(50.0, level=level)

    def per_node_instability(self, *, level: str = "system") -> Dict[str, float]:
        """Per-node coordinate movement per second over the measurement window."""
        start, end = self._measurement_bounds()
        duration = max(end - start, 1e-9)
        results: Dict[str, float] = {}
        for node_id, record in self._nodes.items():
            tracker = (
                record.system_stability if level == "system" else record.application_stability
            )
            movement = tracker.movement_since(start)
            results[node_id] = movement / duration
        return results

    def per_node_update_counts(self) -> Dict[str, int]:
        """Application-coordinate updates per node within the measurement window."""
        return {
            node_id: len(record.application_update_times)
            for node_id, record in self._nodes.items()
        }

    # ------------------------------------------------------------------
    # System summaries
    # ------------------------------------------------------------------
    @staticmethod
    def _median(values: Dict[str, float]) -> Optional[float]:
        if not values:
            return None
        return float(np.percentile(list(values.values()), 50.0))

    def aggregate_instability(self, *, level: str = "system") -> float:
        """Sum over nodes of per-node instability (system-wide ms/sec)."""
        return float(sum(self.per_node_instability(level=level).values()))

    def application_updates_per_node_per_second(self) -> float:
        """Average fraction of nodes updating their application coordinate per second."""
        start, end = self._measurement_bounds()
        duration = max(end - start, 1e-9)
        if not self._nodes:
            return 0.0
        total_updates = sum(
            len(record.application_update_times) for record in self._nodes.values()
        )
        return total_updates / duration / len(self._nodes)

    def node_snapshot(self, node_id: str) -> NodeMetricsSnapshot:
        record = self._nodes[node_id]
        start, end = self._measurement_bounds()
        duration = max(end - start, 1e-9)
        return NodeMetricsSnapshot(
            node_id=node_id,
            observation_count=record.observation_count,
            median_relative_error=self._percentile_of_errors(record.system_errors, 50.0),
            p95_relative_error=self._percentile_of_errors(record.system_errors, 95.0),
            median_application_error=self._percentile_of_errors(record.application_errors, 50.0),
            p95_application_error=self._percentile_of_errors(record.application_errors, 95.0),
            system_instability_ms_per_s=record.system_stability.movement_since(start) / duration,
            application_instability_ms_per_s=(
                record.application_stability.movement_since(start) / duration
            ),
            application_updates=len(record.application_update_times),
        )

    def system_snapshot(self) -> SystemSnapshot:
        """Headline summary over the measurement window."""
        median_err = self.per_node_median_error(level="system")
        p95_err = self.per_node_error_percentile(95.0, level="system")
        app_median_err = self.per_node_median_error(level="application")
        app_p95_err = self.per_node_error_percentile(95.0, level="application")
        system_instability = self.per_node_instability(level="system")
        app_instability = self.per_node_instability(level="application")
        return SystemSnapshot(
            node_count=len(self._nodes),
            duration_s=self.measurement_duration_s,
            median_of_median_error=self._median(median_err),
            median_of_p95_error=self._median(p95_err),
            median_of_median_application_error=self._median(app_median_err),
            median_of_p95_application_error=self._median(app_p95_err),
            aggregate_system_instability=float(sum(system_instability.values())),
            aggregate_application_instability=float(sum(app_instability.values())),
            median_node_system_instability=self._median(system_instability) or 0.0,
            median_node_application_instability=self._median(app_instability) or 0.0,
            application_updates_per_node_per_s=self.application_updates_per_node_per_second(),
        )

    # ------------------------------------------------------------------
    # Time series (Figure 14)
    # ------------------------------------------------------------------
    def time_series(
        self, interval_s: float, *, level: str = "application"
    ) -> List[Dict[str, float]]:
        """Per-interval median relative error and mean instability.

        Matches Figure 14's reporting: data points are the median error and
        the mean per-node instability over consecutive intervals of
        ``interval_s`` seconds, starting from the first observation (the
        start-up period is included so convergence is visible).
        """
        if interval_s <= 0.0:
            raise ValueError("interval_s must be positive")
        if self._first_time_s is None or self._last_time_s is None:
            return []
        start = self._first_time_s
        end = self._last_time_s
        series: List[Dict[str, float]] = []
        t = start
        while t < end:
            t_next = t + interval_s
            errors: List[float] = []
            movements: List[float] = []
            for record in self._nodes.values():
                error_stream = (
                    record.system_errors if level == "system" else record.application_errors
                )
                errors.extend(e for ts, e in error_stream if t <= ts < t_next)
                tracker = (
                    record.system_stability
                    if level == "system"
                    else record.application_stability
                )
                movement = sum(m for ts, m in tracker.movements() if t <= ts < t_next)
                movements.append(movement / interval_s)
            series.append(
                {
                    "time_s": t,
                    "median_relative_error": float(np.median(errors)) if errors else float("nan"),
                    "mean_instability": float(np.mean(movements)) if movements else 0.0,
                }
            )
            t = t_next
        return series

    def reset(self) -> None:
        self._nodes.clear()
        self._first_time_s = None
        self._last_time_s = None

    # ------------------------------------------------------------------
    # Merging (scenario engine)
    # ------------------------------------------------------------------
    @classmethod
    def merge(
        cls,
        collectors: "List[MetricsCollector]",
        *,
        prefixes: Optional[List[str]] = None,
    ) -> "MetricsCollector":
        """Combine per-shard collectors into one system-wide collector.

        The scenario engine runs each grid cell in its own worker process
        and gets one collector per shard back; merging yields a single
        collector whose per-node and aggregate queries span the whole grid.

        Node ids must be disjoint across the inputs.  Shards that simulate
        the same universe under different configurations reuse host names,
        so pass ``prefixes`` (one label per collector, typically the cell
        name) to namespace them as ``"<prefix>/<node_id>"``.

        The inputs must share one ``measurement_start_s``: windowed
        statistics (instability rates in particular) are computed over the
        collector-wide measurement window, so merging shards with
        different windows would silently change each shard's own numbers.
        Merge e.g. a duration sweep per-cell instead.

        The merged collector *references* the input records rather than
        copying them: treat it as a read-only view over the shards.
        """
        sources = list(collectors)
        if not sources:
            raise ValueError("merge requires at least one collector")
        if prefixes is not None and len(prefixes) != len(sources):
            raise ValueError(
                f"got {len(prefixes)} prefixes for {len(sources)} collectors"
            )
        starts = {c.measurement_start_s for c in sources}
        if len(starts) > 1:
            raise ValueError(
                "cannot merge collectors with different measurement windows "
                f"(measurement_start_s values: {sorted(starts)}); windowed "
                "rates would change meaning across shards"
            )
        merged = cls(measurement_start_s=sources[0].measurement_start_s)
        for index, collector in enumerate(sources):
            prefix = f"{prefixes[index]}/" if prefixes is not None else ""
            for node_id, record in collector._nodes.items():
                key = prefix + node_id
                if key in merged._nodes:
                    raise ValueError(
                        f"duplicate node id {key!r} while merging collectors; "
                        "pass prefixes= to namespace the shards"
                    )
                merged._nodes[key] = record
            if collector._first_time_s is not None:
                merged._first_time_s = (
                    collector._first_time_s
                    if merged._first_time_s is None
                    else min(merged._first_time_s, collector._first_time_s)
                )
            if collector._last_time_s is not None:
                merged._last_time_s = (
                    collector._last_time_s
                    if merged._last_time_s is None
                    else max(merged._last_time_s, collector._last_time_s)
                )
        return merged
