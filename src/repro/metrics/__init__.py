"""Accuracy and stability metrics (Section II-A of the paper).

* **Accuracy** is measured as *relative error*: for an observation of
  latency ``l_ij`` against coordinates ``x_i`` and ``x_j``,
  ``|| ||x_i - x_j|| - l_ij | / l_ij``.  The paper reports *per-node*
  distributions (the collection of a node's errors over all its
  observations) summarised by their median and 95th percentile, and then
  CDFs of those per-node summaries across the system.
* **Stability** is the rate of coordinate change, ``sum(||dx_i||) / t`` in
  milliseconds of coordinate movement per second.  It is reported per node
  and aggregated system-wide ("instability").

:mod:`repro.metrics.collector` ties the two together for simulator runs.
"""

from __future__ import annotations

from repro.metrics.accuracy import NodeAccuracy, relative_error
from repro.metrics.collector import MetricsCollector, NodeMetricsSnapshot, SystemSnapshot
from repro.metrics.report import ComparisonRow, comparison_table, format_table
from repro.metrics.stability import StabilityTracker

__all__ = [
    "ComparisonRow",
    "MetricsCollector",
    "NodeAccuracy",
    "NodeMetricsSnapshot",
    "StabilityTracker",
    "SystemSnapshot",
    "comparison_table",
    "format_table",
    "relative_error",
]
