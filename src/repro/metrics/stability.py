"""Coordinate stability (instability) accounting.

The paper quantifies stability as the rate of coordinate change,

    s = sum(||delta x_i||) / t

with the numerator in milliseconds of coordinate-space movement and ``t``
in seconds, i.e. ms/sec.  A perfectly stable system moves 0 ms/sec even
though its links keep producing (noisy) observations.

:class:`StabilityTracker` tracks one coordinate stream (either the system-
or application-level view of one node); per-node and aggregate figures are
assembled by the metrics collector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.coordinate import Coordinate

__all__ = ["StabilityTracker"]


class StabilityTracker:
    """Accumulates coordinate movement for one coordinate stream."""

    __slots__ = (
        "node_id",
        "_previous",
        "_first_time_s",
        "_last_time_s",
        "_total_movement_ms",
        "_updates",
        "_movements",
    )

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self._previous: Optional[Coordinate] = None
        self._first_time_s: Optional[float] = None
        self._last_time_s: Optional[float] = None
        self._total_movement_ms = 0.0
        self._updates = 0
        self._movements: List[Tuple[float, float]] = []

    def record(self, time_s: float, coordinate: Coordinate) -> float:
        """Record the coordinate at ``time_s``; returns the movement since last."""
        movement = 0.0
        if self._previous is not None:
            movement = self._previous.euclidean_distance(coordinate)
            self._total_movement_ms += movement
            if movement > 0.0:
                self._updates += 1
                self._movements.append((time_s, movement))
        else:
            self._first_time_s = time_s
        self._previous = coordinate
        self._last_time_s = time_s
        return movement

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    @property
    def total_movement_ms(self) -> float:
        """Total coordinate-space distance travelled."""
        return self._total_movement_ms

    @property
    def latest(self) -> Optional[Coordinate]:
        """The most recently recorded coordinate (None before any record).

        This is what the coordinate query service ingests: the tracker
        already sees every movement of the stream, so its tail doubles as
        the node's current position without additional bookkeeping.
        """
        return self._previous

    @property
    def update_count(self) -> int:
        """Number of recorded observations that actually moved the coordinate."""
        return self._updates

    @property
    def observed_duration_s(self) -> float:
        if self._first_time_s is None or self._last_time_s is None:
            return 0.0
        return max(0.0, self._last_time_s - self._first_time_s)

    def instability_ms_per_s(self, duration_s: Optional[float] = None) -> float:
        """Movement per second: the paper's stability metric ``s``.

        ``duration_s`` overrides the observed duration (used when the
        tracker only covers part of a run but the rate should be computed
        over the full measurement interval).
        """
        duration = self.observed_duration_s if duration_s is None else duration_s
        if duration <= 0.0:
            return 0.0
        return self._total_movement_ms / duration

    def movements(self) -> List[Tuple[float, float]]:
        """(time_s, movement_ms) pairs for non-zero movements."""
        return list(self._movements)

    def movement_since(self, time_s: float) -> float:
        """Total movement recorded at or after ``time_s``."""
        return sum(m for t, m in self._movements if t >= time_s)

    def reset(self) -> None:
        self._previous = None
        self._first_time_s = None
        self._last_time_s = None
        self._total_movement_ms = 0.0
        self._updates = 0
        self._movements.clear()
