"""Tabular reporting helpers.

The paper reports most comparisons as small tables (Table I) or as a few
headline numbers ("54% improvement in accuracy, 96% in stability").  These
helpers turn :class:`~repro.metrics.collector.SystemSnapshot` objects into
comparison rows and render them as plain-text tables so every experiment
and benchmark can print paper-style output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.metrics.collector import SystemSnapshot

__all__ = ["ComparisonRow", "comparison_table", "format_table", "improvement_percent"]


def improvement_percent(baseline: float, value: float) -> float:
    """Relative change of ``value`` versus ``baseline`` in percent.

    Matches the paper's convention: negative numbers are improvements
    (e.g. "-42%" means 42% lower error than the baseline).
    """
    if baseline == 0.0:
        return 0.0
    return (value - baseline) / baseline * 100.0


@dataclass(frozen=True, slots=True)
class ComparisonRow:
    """One configuration's headline metrics, relative to a baseline."""

    label: str
    median_relative_error: Optional[float]
    instability: float
    error_change_percent: Optional[float]
    instability_change_percent: Optional[float]

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "median_relative_error": self.median_relative_error,
            "instability": self.instability,
            "error_change_percent": self.error_change_percent,
            "instability_change_percent": self.instability_change_percent,
        }


def comparison_table(
    snapshots: Mapping[str, SystemSnapshot],
    *,
    baseline: str,
    level: str = "application",
) -> List[ComparisonRow]:
    """Build Table-I-style rows: error and instability vs. a named baseline.

    ``level`` selects whether application- or system-level metrics are
    compared (Table I predates the application/system split, so it uses the
    system level; Figures 11 and 13 compare application-level numbers).
    """
    if baseline not in snapshots:
        raise ValueError(f"baseline {baseline!r} is not one of the provided snapshots")

    def _error(snapshot: SystemSnapshot) -> Optional[float]:
        if level == "system":
            return snapshot.median_of_median_error
        return snapshot.median_of_median_application_error

    def _instability(snapshot: SystemSnapshot) -> float:
        if level == "system":
            return snapshot.aggregate_system_instability
        return snapshot.aggregate_application_instability

    base_snapshot = snapshots[baseline]
    base_error = _error(base_snapshot)
    base_instability = _instability(base_snapshot)

    rows: List[ComparisonRow] = []
    for label, snapshot in snapshots.items():
        error = _error(snapshot)
        instability = _instability(snapshot)
        rows.append(
            ComparisonRow(
                label=label,
                median_relative_error=error,
                instability=instability,
                error_change_percent=(
                    improvement_percent(base_error, error)
                    if base_error is not None and error is not None
                    else None
                ),
                instability_change_percent=(
                    improvement_percent(base_instability, instability)
                    if base_instability
                    else None
                ),
            )
        )
    return rows


def format_table(
    rows: Sequence[Mapping[str, object]] | Sequence[ComparisonRow],
    columns: Sequence[str] | None = None,
    *,
    float_format: str = "{:.3f}",
) -> str:
    """Render rows of dictionaries (or ComparisonRows) as an aligned text table."""
    dict_rows: List[Mapping[str, object]] = [
        row.as_dict() if isinstance(row, ComparisonRow) else row for row in rows
    ]
    if not dict_rows:
        return "(no rows)"
    if columns is None:
        columns = list(dict_rows[0].keys())

    def _fmt(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    table = [[_fmt(row.get(col)) for col in columns] for row in dict_rows]
    widths = [
        max(len(str(col)), *(len(row[i]) for row in table)) for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(row[i].ljust(widths[i]) for i in range(len(columns))) for row in table
    )
    return f"{header}\n{separator}\n{body}"
