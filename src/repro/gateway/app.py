"""The asyncio HTTP gateway server: routes, auth, quotas, telemetry.

Routes
------

========================== ====== ==============================================
``GET /healthz``           none   gateway liveness: ``{"ok": true, ...}``
``GET /metrics``           none   the gateway-level registry (Prometheus text)
``POST /v1/{t}/query``     key    one wire request object (query and admin ops);
                                  the response body is byte-identical to the TCP
                                  daemon's frame body for the same snapshot
``POST /v1/{t}/publish``   key    a wire ``publish`` request (full or delta)
``POST /v1/{t}/chaos``     key    the chaos control plane (protocol version 3)
``GET /v1/{t}/health``     key    coordinate health; ``?sections=a,b`` restricts
``GET /v1/{t}/metrics``    key    the tenant's own registry (Prometheus text)
``GET /v1/{t}/events``     key    structured event log; ``?limit=N``
========================== ====== ==============================================

Authentication is ``Authorization: Bearer <key>`` or ``X-API-Key:
<key>``; a missing or unknown key is 401, a valid key presented against
another tenant's path is 403 (both counted under
``gateway_auth_failures_total``).  The wire ``shutdown`` op is rejected
on every route: tenants must not be able to stop the shared process.

Semantics mirror the TCP daemon: an application-level failure (unknown
node, malformed query) is still HTTP 200 with the engine's exact
``"ok": false`` envelope -- HTTP status codes describe the *transport
and policy* layer (auth, quota, routing, parse errors), not query
outcomes, so the two transports' response bodies stay byte-identical.

Quota shedding happens before the tenant's engine ever sees the request:
a drained token bucket answers 429 with a deterministic ``Retry-After``
header and an ``overloaded`` JSON envelope carrying ``retry_after_ms``,
the same hint shape the daemon's admission control emits, so
:meth:`~repro.server.client.AsyncCoordinateClient.request_with_retry`
handles both identically.  Only the POST data plane (query / publish /
chaos) consumes quota; GET observability routes never do, so operators
can always see a tenant that is being shed.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Optional, Tuple

from repro.gateway.config import GatewayConfig
from repro.gateway.http import HttpError, HttpRequest, read_request, render_response
from repro.gateway.tenants import Tenant, TenantRegistry
from repro.obs.registry import TelemetryRegistry
from repro.server.daemon import ServerThread
from repro.server.protocol import OPS, QUERY_OPS, encode_body

__all__ = ["GatewayServer"]

_PROM_TYPE = "text/plain; version=0.0.4"

#: Ops a tenant may send through ``POST /v1/{t}/query``.  ``publish`` and
#: ``chaos`` have their own routes; ``shutdown`` is never available.
_QUERY_ROUTE_OPS = frozenset(OPS) - {"publish", "chaos", "shutdown"}


def _error_body(message: str, request_id: Any = None, **extra: Any) -> bytes:
    """An engine-shaped error envelope as a response body."""
    payload: Dict[str, Any] = {"id": request_id, "ok": False, "error": message}
    payload.update(extra)
    return encode_body(payload)


class _Reply(Exception):
    """Internal: unwind request handling with a finished response."""

    def __init__(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        super().__init__(status)
        self.status = status
        self.body = body
        self.content_type = content_type
        self.extra_headers = extra_headers


class GatewayServer:
    """One process serving every configured tenant over HTTP/1.1.

    Lifecycle mirrors :class:`~repro.server.daemon.CoordinateServer`
    (``start`` / ``wait_stopped`` / ``stop`` / ``address``), so
    :class:`~repro.server.daemon.ServerThread` runs either unchanged.
    """

    def __init__(
        self,
        config: GatewayConfig,
        *,
        host: Optional[str] = None,
        port: Optional[int] = None,
        registry: Optional[TelemetryRegistry] = None,
    ) -> None:
        self.config = config
        self.host = host if host is not None else config.host
        self.port = port if port is not None else config.port
        self.tenants = TenantRegistry(config)
        #: The gateway-level registry: cross-tenant edge telemetry only
        #: (requests, sheds, auth failures, per-route latency).  Tenant
        #: serving telemetry lives in each tenant's own registry.
        self.registry = registry if registry is not None else TelemetryRegistry()
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._concurrent = asyncio.Semaphore(config.max_concurrent)

    # ------------------------------------------------------------------
    # Lifecycle (CoordinateServer-compatible)
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("gateway is not started")
        name = self._server.sockets[0].getsockname()
        return name[0], name[1]

    async def start(self) -> Tuple[str, int]:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self.address

    def stop(self) -> None:
        loop, event = self._loop, self._stop_event
        if loop is None or event is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass

    async def wait_stopped(self) -> None:
        assert self._stop_event is not None and self._server is not None
        await self._stop_event.wait()
        self._server.close()
        await self._server.wait_closed()
        self.tenants.shutdown()

    def run_in_thread(self) -> ServerThread:
        return ServerThread(self)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    # A parse failure poisons the stream: answer, close.
                    self._count("malformed")
                    writer.write(
                        render_response(
                            exc.status,
                            _error_body(exc.message),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                async with self._concurrent:
                    started = time.perf_counter()
                    reply = await self._dispatch(request)
                writer.write(
                    render_response(
                        reply.status,
                        reply.body,
                        content_type=reply.content_type,
                        extra_headers=reply.extra_headers,
                        keep_alive=request.keep_alive,
                    )
                )
                await writer.drain()
                self._observe_latency(request, (time.perf_counter() - started) * 1e3)
                if not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown with this keep-alive connection idle: end
            # the handler quietly (suppressing the cancellation is safe
            # here -- the task finishes immediately after).
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError, asyncio.CancelledError):
                pass

    def _count(self, route: str) -> None:
        self.registry.counter(
            "gateway_requests_total", "HTTP requests by route.", route=route
        ).inc()

    def _observe_latency(self, request: HttpRequest, elapsed_ms: float) -> None:
        route = self._route_label(request.path)
        self.registry.histogram(
            "gateway_request_ms", "Gateway request latency by route.", route=route
        ).observe(elapsed_ms)

    @staticmethod
    def _route_label(path: str) -> str:
        """A bounded-cardinality route label (tenant names elided)."""
        if path == "/healthz":
            return "healthz"
        if path == "/metrics":
            return "metrics"
        parts = [part for part in path.split("/") if part]
        if len(parts) == 3 and parts[0] == "v1":
            return f"v1/{parts[2]}"
        return "unknown"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(self, request: HttpRequest) -> _Reply:
        try:
            return await self._route(request)
        except _Reply as reply:
            return reply
        except Exception as exc:  # defensive: a handler bug, not a client error
            return _Reply(500, _error_body(f"internal error: {exc}"))

    async def _route(self, request: HttpRequest) -> _Reply:
        path = request.path
        if path == "/healthz":
            self._count("healthz")
            self._require_method(request, "GET")
            return _Reply(
                200,
                encode_body(
                    {
                        "ok": True,
                        "tenants": len(self.tenants.tenants),
                        "gateway": "repro",
                    }
                ),
            )
        if path == "/metrics":
            self._count("metrics")
            self._require_method(request, "GET")
            return _Reply(
                200,
                self.registry.render_prometheus().encode(),
                content_type=_PROM_TYPE,
            )

        parts = [part for part in path.split("/") if part]
        if len(parts) != 3 or parts[0] != "v1":
            self._count("unknown")
            return _Reply(404, _error_body(f"unknown route {path!r}"))
        _, tenant_name, resource = parts
        self._count(f"v1/{resource}")
        tenant = self._authenticate(request, tenant_name)

        if resource == "query":
            self._require_method(request, "POST")
            wire = self._parse_wire_body(request)
            op = wire.get("op")
            if op not in _QUERY_ROUTE_OPS:
                if op == "publish" or op == "chaos":
                    message = f"op {op!r} must use POST /v1/{tenant_name}/{op}"
                elif op == "shutdown":
                    message = "shutdown is not available through the gateway"
                else:
                    message = f"unknown op {op!r}"
                return _Reply(200, _error_body(message, wire.get("id")))
            self._enforce_quota(tenant, wire, op)
            return await self._engine_reply(tenant, wire)
        if resource == "publish":
            self._require_method(request, "POST")
            wire = self._parse_wire_body(request)
            if wire.get("op") != "publish":
                return _Reply(
                    200,
                    _error_body(
                        "the publish route expects a wire 'publish' request",
                        wire.get("id"),
                    ),
                )
            self._enforce_quota(tenant, wire, "publish")
            return await self._engine_reply(tenant, wire)
        if resource == "chaos":
            self._require_method(request, "POST")
            wire = self._parse_wire_body(request)
            if wire.get("op") != "chaos":
                return _Reply(
                    200,
                    _error_body(
                        "the chaos route expects a wire 'chaos' request",
                        wire.get("id"),
                    ),
                )
            self._enforce_quota(tenant, wire, "chaos")
            return await self._engine_reply(tenant, wire)
        if resource == "health":
            self._require_method(request, "GET")
            wire = {"id": None, "op": "health"}
            sections = request.query_params().get("sections")
            if sections:
                wire["sections"] = [
                    name.strip() for name in sections.split(",") if name.strip()
                ]
            return await self._engine_reply(tenant, wire)
        if resource == "metrics":
            self._require_method(request, "GET")
            return _Reply(
                200,
                tenant.registry.render_prometheus().encode(),
                content_type=_PROM_TYPE,
            )
        if resource == "events":
            self._require_method(request, "GET")
            wire = {"id": None, "op": "events"}
            limit = request.query_params().get("limit")
            if limit is not None:
                if not limit.isdigit():
                    return _Reply(400, _error_body(f"malformed limit {limit!r}"))
                wire["limit"] = int(limit)
            return await self._engine_reply(tenant, wire)
        return _Reply(404, _error_body(f"unknown route {path!r}"))

    # ------------------------------------------------------------------
    # Policy layers
    # ------------------------------------------------------------------
    def _require_method(self, request: HttpRequest, method: str) -> None:
        if request.method != method:
            raise _Reply(
                405,
                _error_body(f"{request.path} requires {method}"),
                extra_headers=(("Allow", method),),
            )

    def _authenticate(self, request: HttpRequest, tenant_name: str) -> Tenant:
        """The authenticated tenant for this path, or a 401/403 reply."""
        presented = request.headers.get("x-api-key")
        if presented is None:
            authorization = request.headers.get("authorization", "")
            scheme, _, credential = authorization.partition(" ")
            if scheme.lower() == "bearer" and credential:
                presented = credential.strip()
        if not presented:
            self._count_auth_failure("missing_key")
            raise _Reply(
                401,
                _error_body("missing API key (Authorization: Bearer or X-API-Key)"),
                extra_headers=(("WWW-Authenticate", 'Bearer realm="repro-gateway"'),),
            )
        tenant = self.tenants.authenticate(presented)
        if tenant is None:
            self._count_auth_failure("unknown_key")
            raise _Reply(
                401,
                _error_body("unknown API key"),
                extra_headers=(("WWW-Authenticate", 'Bearer realm="repro-gateway"'),),
            )
        if tenant.name != tenant_name:
            # A real key used against another tenant's namespace: the
            # caller is authenticated but not authorized -- and learns
            # nothing about whether the target tenant exists.
            self._count_auth_failure("wrong_tenant")
            raise _Reply(
                403,
                _error_body(f"API key is not authorized for tenant {tenant_name!r}"),
            )
        return tenant

    def _count_auth_failure(self, reason: str) -> None:
        self.registry.counter(
            "gateway_auth_failures_total",
            "Rejected requests by auth failure reason.",
            reason=reason,
        ).inc()

    def _parse_wire_body(self, request: HttpRequest) -> Dict[str, Any]:
        try:
            wire = json.loads(request.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _Reply(400, _error_body(f"request body is not valid JSON: {exc}"))
        if not isinstance(wire, dict):
            raise _Reply(400, _error_body("request body must be a JSON object"))
        return wire

    def _enforce_quota(self, tenant: Tenant, wire: Dict[str, Any], op: str) -> None:
        """Spend one token, or unwind with the deterministic 429."""
        bucket = tenant.bucket
        if bucket is None:
            return
        granted, deficit = bucket.try_acquire()
        if granted:
            return
        retry_after_ms = bucket.retry_after_ms(deficit)
        self.registry.counter(
            "gateway_shed_total", "Requests shed by tenant quota.", tenant=tenant.name
        ).inc()
        tenant.registry.counter(
            "gateway_quota_shed_total", "Requests shed by this tenant's quota."
        ).inc()
        tenant.store.events.emit(
            "quota_shed", op=str(op), retry_after_ms=retry_after_ms
        )
        raise _Reply(
            429,
            _error_body(
                f"quota exceeded for tenant {tenant.name!r}",
                wire.get("id"),
                overloaded=True,
                retry_after_ms=retry_after_ms,
            ),
            extra_headers=(
                ("Retry-After", str(bucket.retry_after_seconds(retry_after_ms))),
            ),
        )

    async def _engine_reply(self, tenant: Tenant, wire: Dict[str, Any]) -> _Reply:
        """Run one wire request through the tenant's engine.

        The body is :func:`~repro.server.protocol.encode_body` of the
        engine's response object -- exactly the bytes the TCP daemon
        would put after the frame header.
        """
        response = await tenant.engine.process(wire)
        return _Reply(200, encode_body(response))
