"""An async HTTP client for the gateway with the TCP client's surface.

:class:`GatewayClient` exposes the request surface of
:class:`~repro.server.client.AsyncCoordinateClient` -- ``request``,
``op``, ``query``, ``chaos``, ``close`` -- over one keep-alive HTTP/1.1
connection, so everything written against the TCP client (the load
harness, oracle verification, chaos injection, the CLI) drives the
gateway unchanged via :func:`repro.server.load.run_load_async`'s
``connect`` factory.

Wire request objects are routed by op: ``publish`` to ``POST
/v1/{tenant}/publish``, ``chaos`` to ``POST /v1/{tenant}/chaos``,
everything else to ``POST /v1/{tenant}/query``.  HTTP-layer rejections
(401, 403, 429, ...) surface as the JSON error envelope the gateway put
in the response body -- a 429 parses to an ``overloaded`` envelope with
``retry_after_ms``, exactly like a daemon admission shed, so
``request_with_retry``-style callers treat both transports identically.

HTTP/1.1 without pipelining is one request at a time per connection; an
internal lock serialises concurrent callers.  Concurrency across
requests comes from multiple connections (``repro load --connections``),
matching how real HTTP clients pool.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import Any, Dict, Optional, Tuple

from repro.server.client import AsyncCoordinateClient  # noqa: F401  (surface doc)
from repro.server.errors import RequestTimeout, TransportError
from repro.server.protocol import encode_body, query_to_request
from repro.service.planner import Query

__all__ = ["GatewayClient", "parse_base_url"]

_MAX_RESPONSE_HEADER = 64 * 1024


def parse_base_url(url: str) -> Tuple[str, int]:
    """``(host, port)`` from an ``http://host:port`` base URL."""
    if not url.startswith("http://"):
        raise ValueError(f"gateway URL must start with http:// (got {url!r})")
    netloc = url[len("http://") :].split("/", 1)[0]
    host, sep, port_text = netloc.rpartition(":")
    if not sep or not port_text.isdigit():
        raise ValueError(f"gateway URL needs an explicit port (got {url!r})")
    if not host:
        raise ValueError(f"gateway URL needs a host (got {url!r})")
    return host, int(port_text)


class GatewayClient:
    """One keep-alive HTTP connection to a gateway, bound to a tenant."""

    def __init__(self, host: str, port: int, tenant: str, api_key: str) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.api_key = api_key
        self._ids = itertools.count(1)
        self._lock = asyncio.Lock()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._closed = False

    @classmethod
    async def connect(
        cls, base_url: str, tenant: str, api_key: str
    ) -> "GatewayClient":
        host, port = parse_base_url(base_url)
        client = cls(host, port, tenant, api_key)
        await client._ensure_connection()
        return client

    async def _ensure_connection(self) -> None:
        if self._reader is None or self._writer is None:
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
            except OSError as exc:
                raise TransportError(f"cannot connect to gateway: {exc}") from exc

    def _drop_connection(self) -> None:
        """Abandon the connection (a timed-out response would desync it)."""
        if self._writer is not None:
            self._writer.close()
        self._reader = None
        self._writer = None

    # ------------------------------------------------------------------
    # The AsyncCoordinateClient surface
    # ------------------------------------------------------------------
    async def request(
        self, request: Dict[str, Any], *, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Send one wire request object; return the response object.

        The client assigns its own correlation id, like the TCP client.
        ``timeout`` bounds the exchange; expiry raises
        :class:`RequestTimeout` and drops the connection (a late HTTP
        response cannot be correlated away, so the next request
        reconnects).
        """
        payload = dict(request)
        payload["id"] = next(self._ids)
        status, body = await self.request_raw(payload, timeout=timeout)
        try:
            response = json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TransportError(
                f"gateway returned a non-JSON body (HTTP {status})"
            ) from exc
        if not isinstance(response, dict):
            raise TransportError(f"gateway returned a non-object body (HTTP {status})")
        return response

    async def request_raw(
        self, payload: Dict[str, Any], *, timeout: Optional[float] = None
    ) -> Tuple[int, bytes]:
        """``(status, raw body bytes)`` for one already-id'd wire request.

        The byte-identity tests compare these raw bytes against TCP
        frame bodies directly.
        """
        if self._closed:
            raise TransportError("client is closed")
        op = payload.get("op")
        if op == "publish":
            path = f"/v1/{self.tenant}/publish"
        elif op == "chaos":
            path = f"/v1/{self.tenant}/chaos"
        else:
            path = f"/v1/{self.tenant}/query"
        body = encode_body(payload)
        head = (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Authorization: Bearer {self.api_key}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        ).encode("ascii")
        async with self._lock:
            await self._ensure_connection()
            assert self._reader is not None and self._writer is not None
            try:
                self._writer.write(head + body)
                await self._writer.drain()
                if timeout is None:
                    return await self._read_response()
                try:
                    return await asyncio.wait_for(self._read_response(), timeout)
                except asyncio.TimeoutError:
                    self._drop_connection()
                    raise RequestTimeout(
                        f"gateway request ({payload.get('op')}) timed out "
                        f"after {timeout}s"
                    ) from None
            except (ConnectionResetError, BrokenPipeError, OSError) as exc:
                self._drop_connection()
                raise TransportError(f"connection lost: {exc}") from exc
            except asyncio.IncompleteReadError as exc:
                self._drop_connection()
                raise TransportError("gateway closed the connection") from exc

    async def _read_response(self) -> Tuple[int, bytes]:
        assert self._reader is not None
        status_line = await self._reader.readuntil(b"\r\n")
        parts = status_line.decode("ascii", "replace").split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            self._drop_connection()
            raise TransportError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        content_length: Optional[int] = None
        keep_alive = True
        header_bytes = 0
        while True:
            line = await self._reader.readuntil(b"\r\n")
            header_bytes += len(line)
            if header_bytes > _MAX_RESPONSE_HEADER:
                self._drop_connection()
                raise TransportError("response header block too large")
            if line == b"\r\n":
                break
            name, _, value = line.decode("ascii", "replace").partition(":")
            name = name.strip().lower()
            value = value.strip()
            if name == "content-length" and value.isdigit():
                content_length = int(value)
            elif name == "connection" and value.lower() == "close":
                keep_alive = False
        if content_length is None:
            self._drop_connection()
            raise TransportError("gateway response is missing Content-Length")
        body = await self._reader.readexactly(content_length)
        if not keep_alive:
            self._drop_connection()
        return status, body

    async def query(
        self, query: Query, *, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        return await self.request(query_to_request(query, None), timeout=timeout)

    async def op(self, op: str, **fields: Any) -> Dict[str, Any]:
        return await self.request({"op": op, **fields})

    async def chaos(self, **fields: Any) -> Dict[str, Any]:
        from repro.server.protocol import PROTOCOL_VERSION

        return await self.request(
            {"op": "chaos", "version": PROTOCOL_VERSION, **fields}
        )

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        writer = self._writer
        self._reader = None
        self._writer = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
