"""Per-tenant runtime state and constant-time API-key authentication.

Each tenant is a fully isolated serving stack: its own
:class:`~repro.server.sharding.ShardedCoordinateStore` (which owns its
own telemetry registry, event log, health tracker and result cache), its
own :class:`~repro.server.daemon.RequestEngine` with an independent
admission limit, and its own deterministic token bucket.  Nothing is
shared between tenants except the process and the event loop -- tenant
A's publishes, cache entries, health snapshots, chaos schedules and
metrics are invisible to tenant B by construction, and the isolation
tests pin it.

Authentication compares the presented key against *every* tenant's key
with :func:`hmac.compare_digest` and no early exit, so the comparison
cost is independent of whether (and where) the key matches -- a timing
probe learns nothing about key prefixes or tenant ordering.
"""

from __future__ import annotations

import hmac
from typing import Dict, Optional

from repro.gateway.config import GatewayConfig, TenantSpec
from repro.gateway.ratelimit import TokenBucket
from repro.server.daemon import RequestEngine
from repro.server.load import synthetic_coordinates
from repro.server.sharding import ShardedCoordinateStore
from repro.service.publish import EpochDelta

__all__ = ["Tenant", "TenantRegistry", "build_store"]


def build_store(spec: TenantSpec) -> ShardedCoordinateStore:
    """One tenant's store, populated from its configured data source."""
    store = ShardedCoordinateStore(
        spec.shards,
        index_kind=spec.index,
        history=spec.history,
        cache_entries=spec.cache_entries,
    )
    if spec.data is None:
        return store  # empty generation; populated via the publish route
    source, value = spec.data
    if source == "synthetic":
        n, seed = value
        store.publish_delta(
            EpochDelta.from_coordinates(
                synthetic_coordinates(n, seed=seed), source=f"synthetic-{n}"
            )
        )
    elif source == "snapshot":
        from repro.service.snapshot import CoordinateSnapshot

        snapshot = CoordinateSnapshot.load(value)
        store.publish_delta(
            EpochDelta.from_coordinates(
                dict(snapshot.coordinates), source=snapshot.source or str(value)
            )
        )
    else:
        from repro.engine.kernel import run_scenario
        from repro.scenarios.registry import get_scenario

        scenario = get_scenario(value)
        run = run_scenario(scenario)
        store.ingest_collector(run.collector, source=scenario.name)
    return store


class Tenant:
    """One tenant's isolated serving stack."""

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.store = build_store(spec)
        #: The store's registry doubles as the tenant registry: store,
        #: engine and gateway route instruments for this tenant all land
        #: in it, and ``GET /v1/{tenant}/metrics`` renders exactly it.
        self.registry = self.store.registry
        self.engine = RequestEngine(
            self.store,
            admission_limit=spec.admission_limit,
            thread_name_prefix=f"gw-{spec.name}",
        )
        self.bucket = TokenBucket(spec.quota) if spec.quota is not None else None

    def shutdown(self) -> None:
        self.engine.shutdown(wait=True)


class TenantRegistry:
    """All tenants of one gateway process, keyed by name and by API key."""

    def __init__(self, config: GatewayConfig) -> None:
        self.config = config
        self.tenants: Dict[str, Tenant] = {
            spec.name: Tenant(spec) for spec in config.tenants
        }
        #: (api_key, tenant) pairs in config order; authentication scans
        #: all of them unconditionally (see :meth:`authenticate`).
        self._keys = [
            (spec.api_key.encode(), self.tenants[spec.name])
            for spec in config.tenants
        ]

    def get(self, name: str) -> Optional[Tenant]:
        return self.tenants.get(name)

    def authenticate(self, presented: str) -> Optional[Tenant]:
        """The tenant owning ``presented``, via constant-time comparison.

        Every configured key is compared (no early exit), each with
        :func:`hmac.compare_digest`, so timing does not depend on which
        key -- if any -- matched.  Keys are unique by config validation,
        so at most one comparison succeeds.
        """
        encoded = presented.encode()
        matched: Optional[Tenant] = None
        for key, tenant in self._keys:
            if hmac.compare_digest(key, encoded):
                matched = tenant
        return matched

    def shutdown(self) -> None:
        for tenant in self.tenants.values():
            tenant.shutdown()
