"""The multi-tenant HTTP gateway in front of per-tenant coordinate spaces.

The daemon (:mod:`repro.server`) serves *one* coordinate space over a
bespoke TCP protocol.  This package is the production edge the paper's
"millions of users" framing calls for: one process fronting many fully
isolated tenant spaces over plain HTTP/1.1 -- stdlib only, with the
request parser hand-rolled in the same spirit as
:mod:`repro.server.protocol`.

* :mod:`repro.gateway.config` -- the validated JSON config: API keys,
  per-tenant store shape, quotas, data sources.
* :mod:`repro.gateway.tenants` -- one
  :class:`~repro.server.sharding.ShardedCoordinateStore` +
  :class:`~repro.server.daemon.RequestEngine` + token bucket + telemetry
  registry per tenant, behind constant-time API-key authentication.
* :mod:`repro.gateway.ratelimit` -- deterministic count-driven token
  buckets (no wall clock, like the chaos schedules).
* :mod:`repro.gateway.http` -- the minimal HTTP/1.1 request parser and
  response writer.
* :mod:`repro.gateway.app` -- the asyncio server and its routes.
* :mod:`repro.gateway.client` -- an async HTTP client exposing the
  :class:`~repro.server.client.AsyncCoordinateClient` request surface,
  so the load harness and oracle verification drive the gateway
  unchanged.
* :mod:`repro.gateway.cli` -- ``repro gateway --config gateway.json``.

Responses on the query path are byte-identical to the TCP daemon's frame
bodies for the same snapshot: both transports call the same
:class:`~repro.server.daemon.RequestEngine` and serialize with the same
:func:`~repro.server.protocol.encode_body`.
"""

from repro.gateway.config import GatewayConfig, GatewayConfigError, load_gateway_config
from repro.gateway.tenants import Tenant, TenantRegistry

__all__ = [
    "GatewayConfig",
    "GatewayConfigError",
    "Tenant",
    "TenantRegistry",
    "load_gateway_config",
]
