"""The gateway's JSON configuration: tenants, API keys, quotas, data.

A config file maps API keys to isolated tenant coordinate spaces::

    {
      "gateway": {"admission_limit": 256},
      "tenants": [
        {
          "name": "acme",
          "api_key": "acme-key-1",
          "shards": 2,
          "index": "vptree",
          "quota": {"capacity": 64, "refill_amount": 8, "refill_every": 8},
          "data": {"synthetic": 200, "seed": 7}
        },
        {
          "name": "globex",
          "api_key": "globex-key-1",
          "data": {"snapshot": "globex.json"}
        }
      ]
    }

Every field except ``name`` and ``api_key`` has a default.  ``data`` may
be a synthetic universe (``{"synthetic": N, "seed": S}``), a saved
snapshot (``{"snapshot": "path"}``), a registered scenario
(``{"scenario": "name"}``), or absent entirely -- an absent source means
the tenant starts with the empty generation and is populated over the
wire ``publish`` route, the per-tenant
:class:`~repro.service.publish.EpochPublisher` generation stream.

``quota`` configures the deterministic token bucket
(:mod:`repro.gateway.ratelimit`); ``null`` disables rate limiting for
that tenant.  ``ms_per_request`` converts a shed request's bucket
deficit into the ``Retry-After`` hint.

Validation is strict and total: any malformed field raises
:exc:`GatewayConfigError` with a one-line message naming the offending
tenant and field, which the CLI reports as ``error: ...`` with exit
code 2 -- the same contract as every other ``repro`` command.
"""

from __future__ import annotations

import json
import string
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.service.index import INDEX_KINDS

__all__ = [
    "GatewayConfig",
    "GatewayConfigError",
    "TenantQuota",
    "TenantSpec",
    "load_gateway_config",
]

#: Characters allowed in a tenant name (it is a URL path segment).
_NAME_CHARS = frozenset(string.ascii_lowercase + string.digits + "-_")

#: The mutually exclusive tenant data sources.
_DATA_SOURCES = ("synthetic", "snapshot", "scenario")


class GatewayConfigError(ValueError):
    """A malformed gateway config (reported as one line, exit code 2)."""


@dataclass(frozen=True, slots=True)
class TenantQuota:
    """A tenant's deterministic token-bucket rate limit.

    Count-driven, like the chaos fault schedules: ``refill_amount``
    tokens return after every ``refill_every`` *observed* requests (shed
    ones included), never on a wall clock, so quota behaviour in tests
    and replays is a pure function of the request stream.
    """

    capacity: int = 64
    refill_amount: int = 8
    refill_every: int = 8
    #: Milliseconds of estimated serving time per queued request; a shed
    #: request's Retry-After hint is ``deficit * ms_per_request``.
    ms_per_request: float = 10.0


@dataclass(frozen=True, slots=True)
class TenantSpec:
    """One tenant's validated configuration."""

    name: str
    api_key: str
    shards: int = 2
    index: str = "vptree"
    history: int = 4
    cache_entries: int = 8192
    admission_limit: int = 256
    quota: Optional[TenantQuota] = TenantQuota()
    #: The initial population: ("synthetic", (n, seed)), ("snapshot",
    #: path), ("scenario", name), or None for an empty space.
    data: Optional[Tuple[str, Any]] = None


@dataclass(frozen=True, slots=True)
class GatewayConfig:
    """The whole validated gateway configuration."""

    tenants: Tuple[TenantSpec, ...]
    host: str = "127.0.0.1"
    port: int = 0
    #: Upper bound on concurrently processed requests across all tenants
    #: (each tenant additionally has its own engine admission limit).
    max_concurrent: int = 1024

    def tenant(self, name: str) -> TenantSpec:
        for spec in self.tenants:
            if spec.name == name:
                return spec
        raise KeyError(name)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise GatewayConfigError(message)


def _int_field(
    mapping: Mapping[str, Any], key: str, default: int, minimum: int, where: str
) -> int:
    value = mapping.get(key, default)
    _require(
        not isinstance(value, bool) and isinstance(value, int),
        f"{where}: '{key}' must be an integer",
    )
    _require(value >= minimum, f"{where}: '{key}' must be >= {minimum}")
    return value


def _parse_quota(raw: Any, where: str) -> Optional[TenantQuota]:
    if raw is None:
        return None
    _require(isinstance(raw, dict), f"{where}: 'quota' must be an object or null")
    unknown = set(raw) - {"capacity", "refill_amount", "refill_every", "ms_per_request"}
    _require(not unknown, f"{where}: unknown quota field(s) {sorted(unknown)}")
    capacity = _int_field(raw, "capacity", 64, 1, where)
    refill_amount = _int_field(raw, "refill_amount", 8, 1, where)
    refill_every = _int_field(raw, "refill_every", 8, 1, where)
    ms_per_request = raw.get("ms_per_request", 10.0)
    _require(
        not isinstance(ms_per_request, bool)
        and isinstance(ms_per_request, (int, float))
        and float(ms_per_request) > 0.0,
        f"{where}: 'ms_per_request' must be a positive number",
    )
    return TenantQuota(
        capacity=capacity,
        refill_amount=refill_amount,
        refill_every=refill_every,
        ms_per_request=float(ms_per_request),
    )


def _parse_data(raw: Any, where: str) -> Optional[Tuple[str, Any]]:
    if raw is None:
        return None
    _require(isinstance(raw, dict), f"{where}: 'data' must be an object or null")
    sources = [key for key in _DATA_SOURCES if key in raw]
    _require(
        len(sources) == 1,
        f"{where}: 'data' needs exactly one of {list(_DATA_SOURCES)}",
    )
    unknown = set(raw) - set(_DATA_SOURCES) - {"seed"}
    _require(not unknown, f"{where}: unknown data field(s) {sorted(unknown)}")
    source = sources[0]
    if source == "synthetic":
        n = raw["synthetic"]
        _require(
            not isinstance(n, bool) and isinstance(n, int) and n >= 2,
            f"{where}: 'synthetic' must be an integer >= 2",
        )
        seed = _int_field(raw, "seed", 7, 0, where)
        return ("synthetic", (n, seed))
    _require(
        "seed" not in raw, f"{where}: 'seed' only applies to synthetic data"
    )
    value = raw[source]
    _require(
        isinstance(value, str) and bool(value),
        f"{where}: '{source}' must be a non-empty string",
    )
    return (source, value)


def _parse_tenant(raw: Any, position: int, defaults: Mapping[str, Any]) -> TenantSpec:
    where = f"tenants[{position}]"
    _require(isinstance(raw, dict), f"{where}: each tenant must be an object")
    known = {
        "name",
        "api_key",
        "shards",
        "index",
        "history",
        "cache_entries",
        "admission_limit",
        "quota",
        "data",
    }
    unknown = set(raw) - known
    _require(not unknown, f"{where}: unknown field(s) {sorted(unknown)}")

    name = raw.get("name")
    _require(
        isinstance(name, str) and bool(name),
        f"{where}: 'name' must be a non-empty string",
    )
    _require(
        set(name) <= _NAME_CHARS,
        f"{where}: name {name!r} may only use lowercase letters, digits, '-', '_'",
    )
    where = f"tenant {name!r}"

    api_key = raw.get("api_key")
    _require(
        isinstance(api_key, str) and len(api_key) >= 8,
        f"{where}: 'api_key' must be a string of at least 8 characters",
    )

    index = raw.get("index", defaults.get("index", "vptree"))
    _require(
        index in INDEX_KINDS,
        f"{where}: unknown index {index!r}; known: {list(INDEX_KINDS)}",
    )

    merged = {**defaults, **raw}
    quota_raw = raw["quota"] if "quota" in raw else defaults.get("quota")
    return TenantSpec(
        name=name,
        api_key=api_key,
        shards=_int_field(merged, "shards", 2, 1, where),
        index=index,
        history=_int_field(merged, "history", 4, 1, where),
        cache_entries=_int_field(merged, "cache_entries", 8192, 0, where),
        admission_limit=_int_field(merged, "admission_limit", 256, 1, where),
        quota=_parse_quota(quota_raw, where) if "quota" in merged else TenantQuota(),
        data=_parse_data(raw.get("data"), where),
    )


def parse_gateway_config(raw: Any) -> GatewayConfig:
    """Validate a parsed JSON document into a :class:`GatewayConfig`."""
    _require(isinstance(raw, dict), "config root must be a JSON object")
    unknown = set(raw) - {"gateway", "tenants"}
    _require(not unknown, f"unknown top-level field(s) {sorted(unknown)}")

    gateway_raw = raw.get("gateway", {})
    _require(isinstance(gateway_raw, dict), "'gateway' must be an object")
    gateway_known = {
        "host",
        "port",
        "max_concurrent",
        # Per-tenant defaults, overridable per tenant:
        "shards",
        "index",
        "history",
        "cache_entries",
        "admission_limit",
        "quota",
    }
    unknown = set(gateway_raw) - gateway_known
    _require(not unknown, f"gateway: unknown field(s) {sorted(unknown)}")
    host = gateway_raw.get("host", "127.0.0.1")
    _require(isinstance(host, str) and bool(host), "gateway: 'host' must be a string")
    port = _int_field(gateway_raw, "port", 0, 0, "gateway")
    _require(port <= 65535, "gateway: 'port' must be <= 65535")
    max_concurrent = _int_field(gateway_raw, "max_concurrent", 1024, 1, "gateway")
    defaults = {
        key: gateway_raw[key]
        for key in ("shards", "index", "history", "cache_entries", "admission_limit", "quota")
        if key in gateway_raw
    }

    tenants_raw = raw.get("tenants")
    _require(
        isinstance(tenants_raw, list) and bool(tenants_raw),
        "'tenants' must be a non-empty list",
    )
    tenants = tuple(
        _parse_tenant(entry, position, defaults)
        for position, entry in enumerate(tenants_raw)
    )

    names = [spec.name for spec in tenants]
    _require(
        len(set(names)) == len(names),
        f"tenant names must be unique; duplicates: "
        f"{sorted({n for n in names if names.count(n) > 1})}",
    )
    keys = [spec.api_key for spec in tenants]
    _require(
        len(set(keys)) == len(keys),
        "api keys must be globally unique across tenants",
    )
    return GatewayConfig(
        tenants=tenants, host=host, port=port, max_concurrent=max_concurrent
    )


def load_gateway_config(path: Path) -> GatewayConfig:
    """Load and validate a gateway config file.

    Raises :exc:`GatewayConfigError` with a one-line message for every
    failure mode -- unreadable file, invalid JSON, schema violations --
    so the CLI's error contract (``error: ...``, exit 2) holds uniformly.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise GatewayConfigError(f"cannot read config {path}: {exc}") from exc
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GatewayConfigError(f"config {path} is not valid JSON: {exc}") from exc
    return parse_gateway_config(raw)
