"""The ``repro gateway`` command: serve tenants over HTTP.

Usage::

    # Boot every tenant in gateway.json; 0 picks an ephemeral port
    repro gateway --config gateway.json --port 8080

    # Scripted runs (CI): announce readiness, stop on a deadline
    repro gateway --config gateway.json --ready-file ready.txt --max-seconds 300

``--ready-file`` writes ``host port`` once the socket is bound, the same
contract as ``repro serve-daemon``.  A malformed config is a one-line
``error: ...`` with exit code 2.  The process runs until Ctrl-C or
``--max-seconds``; tenants cannot stop it over the wire (the ``shutdown``
op is rejected by the gateway).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.gateway.app import GatewayServer
from repro.gateway.config import GatewayConfigError, load_gateway_config

__all__ = ["main"]


def _cmd_gateway(args: argparse.Namespace) -> int:
    try:
        config = load_gateway_config(args.config)
    except GatewayConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = GatewayServer(config, host=args.host, port=args.port)

    async def serve() -> None:
        host, port = await server.start()
        tenants = ", ".join(
            f"{tenant.name} ({len(tenant.store.generation())} nodes, "
            f"{tenant.store.shards} shard(s))"
            for tenant in server.tenants.tenants.values()
        )
        print(f"gateway serving {len(config.tenants)} tenant(s) on {host}:{port}")
        print(f"tenants: {tenants}", flush=True)
        if args.ready_file is not None:
            args.ready_file.write_text(f"{host} {port}\n")
        if args.max_seconds is not None:
            asyncio.get_running_loop().call_later(args.max_seconds, server.stop)
        await server.wait_stopped()
        print("gateway stopped cleanly", flush=True)

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        server.stop()
        print("interrupted; gateway stopped cleanly", flush=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro gateway",
        description="Serve per-tenant coordinate spaces over HTTP.",
    )
    parser.add_argument(
        "--config",
        type=Path,
        required=True,
        help="gateway JSON config (tenants, API keys, quotas, data sources)",
    )
    parser.add_argument(
        "--host", default=None, help="bind host (default: config, then 127.0.0.1)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port (default: config, then 0 = ephemeral)",
    )
    parser.add_argument(
        "--ready-file",
        type=Path,
        default=None,
        help="write 'host port' here once the socket is bound",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="stop automatically after this long (scripted runs)",
    )
    parser.set_defaults(handler=_cmd_gateway)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
