"""A minimal, strict HTTP/1.1 layer for the gateway (stdlib only).

Hand-rolled in the same spirit as the TCP wire protocol
(:mod:`repro.server.protocol`): a tiny, fully specified subset with hard
bounds and loud failures rather than a permissive general-purpose
parser.  Supported: request line + headers + optional ``Content-Length``
body, keep-alive (HTTP/1.1 default, ``Connection: close`` honored).
Deliberately rejected: ``Transfer-Encoding`` (no chunked uploads),
request lines or header blocks past the size bounds, bodies past the
frame limit -- each with a one-line 4xx so a misbehaving client learns
why.

Responses are rendered with a fixed, deterministic header set (no Date
header -- byte-identical responses for byte-identical requests is a
design property of this codebase, and tests pin it).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import unquote

from repro.server.protocol import MAX_FRAME_BYTES

__all__ = [
    "HttpError",
    "HttpRequest",
    "read_request",
    "render_response",
]

#: Bounds, hit with a 4xx instead of unbounded buffering.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = MAX_FRAME_BYTES

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
}


class HttpError(Exception):
    """A malformed or unsupported request; carries the response status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(slots=True)
class HttpRequest:
    """One parsed request."""

    method: str
    #: The decoded path, without the query string.
    path: str
    #: Raw query string ("" when absent).
    query: str
    #: Header names lowercased; later duplicates overwrite earlier ones.
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def query_params(self) -> Dict[str, str]:
        """Decoded ``key=value`` pairs (flat; later keys overwrite)."""
        params: Dict[str, str] = {}
        for part in self.query.split("&"):
            if not part:
                continue
            key, _, value = part.partition("=")
            params[unquote(key)] = unquote(value)
        return params


async def _read_line(reader: asyncio.StreamReader, limit: int, what: str) -> bytes:
    """One CRLF-terminated line within ``limit`` bytes (sans terminator)."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError from exc
        raise HttpError(400, f"truncated {what}") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(
            431 if what == "header" else 400, f"{what} exceeds {limit} bytes"
        ) from exc
    if len(line) > limit + 2:
        raise HttpError(431 if what == "header" else 400, f"{what} exceeds {limit} bytes")
    return line[:-2]


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request; ``None`` on clean EOF between requests.

    Raises :exc:`HttpError` on anything malformed; the caller answers
    with the carried status and closes the connection (a parse failure
    poisons the stream, exactly like a corrupt length prefix on the TCP
    path).
    """
    try:
        line = await _read_line(reader, MAX_REQUEST_LINE, "request line")
    except EOFError:
        return None
    try:
        text = line.decode("ascii")
    except UnicodeDecodeError as exc:
        raise HttpError(400, "request line is not ASCII") from exc
    parts = text.split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {text!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version {version!r}")
    if not method.isalpha() or method != method.upper():
        raise HttpError(400, f"malformed method {method!r}")
    if not target.startswith("/"):
        raise HttpError(400, f"unsupported request target {target!r}")
    raw_path, _, query = target.partition("?")

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await _read_line(reader, MAX_HEADER_BYTES, "header")
        if not line:
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(431, f"header block exceeds {MAX_HEADER_BYTES} bytes")
        name, sep, value = line.partition(b":")
        if not sep or not name:
            raise HttpError(400, f"malformed header line {line!r}")
        try:
            headers[name.decode("ascii").strip().lower()] = (
                value.decode("ascii").strip()
            )
        except UnicodeDecodeError as exc:
            raise HttpError(400, "header is not ASCII") from exc

    if "transfer-encoding" in headers:
        raise HttpError(501, "Transfer-Encoding is not supported; send Content-Length")
    body = b""
    if "content-length" in headers:
        raw_length = headers["content-length"]
        if not raw_length.isdigit():
            raise HttpError(400, f"malformed Content-Length {raw_length!r}")
        length = int(raw_length)
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated request body") from exc

    version_keep_alive = version == "HTTP/1.1"
    if not version_keep_alive and headers.get("connection", "").lower() != "keep-alive":
        headers.setdefault("connection", "close")
    return HttpRequest(
        method=method, path=unquote(raw_path), query=query, headers=headers, body=body
    )


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: Tuple[Tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> bytes:
    """One full HTTP/1.1 response, headers in a fixed deterministic order."""
    reason = _REASONS.get(status, "Unknown")
    lines: List[str] = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body
