"""Deterministic, count-driven token buckets for per-tenant quotas.

A classical token bucket refills on the wall clock, which makes quota
behaviour racy in tests and irreproducible in replays.  This one refills
on the *request count* instead, the same discipline the chaos fault
schedules use: after every ``refill_every`` observed requests --
granted or shed, it is the arrival stream that drives time --
``refill_amount`` tokens return, capped at ``capacity``.  Whether the
N-th request of a stream is shed is therefore a pure function of the
stream itself.

A shed request learns its *deficit*: how many requests' worth of refill
must be observed before a token is available again.  The gateway converts
that into a ``Retry-After`` hint via the tenant's configured
``ms_per_request``, so the hint is deterministic too.
"""

from __future__ import annotations

import math
import threading
from typing import Tuple

from repro.gateway.config import TenantQuota

__all__ = ["TokenBucket"]


class TokenBucket:
    """A count-driven token bucket (thread-safe, deterministic).

    The bucket starts full.  Every call to :meth:`try_acquire` is one
    observed request: it first applies any refills the arrival count has
    earned, then takes a token if one is available.
    """

    def __init__(self, quota: TenantQuota) -> None:
        self.quota = quota
        self._lock = threading.Lock()
        self._tokens = quota.capacity
        #: Requests observed since the last refill tick.
        self._since_refill = 0

    def try_acquire(self) -> Tuple[bool, int]:
        """Observe one request; return ``(granted, deficit)``.

        ``deficit`` is 0 when granted; when shed it is the number of
        *further* requests that must be observed before a token exists --
        the deterministic analogue of "seconds until capacity returns".
        """
        quota = self.quota
        with self._lock:
            self._since_refill += 1
            if self._since_refill >= quota.refill_every:
                earned = self._since_refill // quota.refill_every
                self._since_refill -= earned * quota.refill_every
                self._tokens = min(quota.capacity, self._tokens + earned * quota.refill_amount)
            if self._tokens > 0:
                self._tokens -= 1
                return True, 0
            # Requests-until-next-refill, observed-count included: the
            # very next refill tick mints refill_amount >= 1 tokens.
            return False, quota.refill_every - self._since_refill

    def retry_after_ms(self, deficit: int) -> float:
        """The ``Retry-After`` hint for a shed request's deficit."""
        return float(deficit) * self.quota.ms_per_request

    @staticmethod
    def retry_after_seconds(retry_after_ms: float) -> int:
        """The integer-seconds ``Retry-After`` header value (>= 1)."""
        return max(1, math.ceil(retry_after_ms / 1000.0))

    @property
    def tokens(self) -> int:
        with self._lock:
            return self._tokens
