"""The coordinate query service: the repo's first read-path subsystem.

Simulation and replay runs *produce* coordinates; this package *serves*
them.  The write path ingests streaming coordinate updates into versioned,
immutable snapshots (:mod:`repro.service.snapshot`); the read path answers
proximity queries -- k-nearest, range, pairwise latency, centroid --
through sub-linear spatial indexes (:mod:`repro.service.index`) behind a
batching, caching, stats-keeping planner (:mod:`repro.service.planner`).
:mod:`repro.service.workload` generates deterministic query load for
scenarios and benchmarks, and :mod:`repro.service.cli` exposes the
``repro serve`` / ``repro query`` commands.

The linear :class:`~repro.overlay.knn.CoordinateIndex` remains the
correctness oracle: every spatial implementation returns identical
results, which the property tests and ``benchmarks/bench_service.py``
enforce.
"""

from repro.service.index import INDEX_KINDS, GridIndex, VPTreeIndex, build_index
from repro.service.publish import EpochDelta, EpochPublisher
from repro.service.planner import (
    LRUTTLCache,
    Query,
    QueryError,
    QueryPlanner,
    QueryResult,
    QUERY_KINDS,
)
from repro.service.snapshot import CoordinateSnapshot, SnapshotStore
from repro.service.workload import (
    QUERY_MIXES,
    WorkloadReport,
    generate_queries,
    payload_checksum,
    run_workload,
)

__all__ = [
    "CoordinateSnapshot",
    "EpochDelta",
    "EpochPublisher",
    "GridIndex",
    "INDEX_KINDS",
    "LRUTTLCache",
    "QUERY_KINDS",
    "QUERY_MIXES",
    "Query",
    "QueryError",
    "QueryPlanner",
    "QueryResult",
    "SnapshotStore",
    "VPTreeIndex",
    "WorkloadReport",
    "build_index",
    "generate_queries",
    "payload_checksum",
    "run_workload",
]
