"""Versioned coordinate snapshots: the query service's write path.

Coordinate producers (netsim hosts via their run's
:class:`~repro.metrics.collector.MetricsCollector`, trace replays, or any
``{node_id: Coordinate}`` stream) feed a :class:`SnapshotStore`.  Updates
are *staged* until :meth:`SnapshotStore.commit` publishes them as a new
immutable :class:`CoordinateSnapshot` with a monotonically increasing
version, so the read path always works against a consistent point-in-time
view:

* an open snapshot never changes -- ingest arriving mid-query cannot bleed
  into it (readers hold a frozen mapping; writers build the next version
  on the side);
* query results are attributable to a version, which is what makes the
  planner's result cache sound (cache keys include the version, so serving
  a cached result can never mix coordinate generations);
* per-version spatial indexes are built lazily and memoised, so a batch of
  queries against one version pays one index build.

Two snapshot representations share one duck-typed read API:

* :class:`CoordinateSnapshot` -- the object-based form (a frozen
  ``{node_id: Coordinate}`` mapping), fed by ``apply``/``commit`` staging;
  this is the correctness oracle the array path is checked against.
* :class:`ArraySnapshot` -- the array-backed form: node ids plus ``(n, d)``
  component and ``(n,)`` height arrays, published whole via
  :meth:`SnapshotStore.publish_epoch` or incrementally via
  :meth:`SnapshotStore.publish_delta` (copy-on-write of the touched rows
  only; see :mod:`repro.service.publish`).  A batch simulation hands its
  state arrays straight in -- no per-node object materialisation -- and a
  ``dense`` index adopts them without copying.

Thread-safety: staging, commits and index memoisation take an internal
lock; published snapshots are immutable and safe to read from any thread
without coordination.
"""

from __future__ import annotations

import json
import threading
import warnings
from pathlib import Path
from types import MappingProxyType
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.coordinate import Coordinate
from repro.overlay.knn import CoordinateIndex
from repro.service.index import INDEX_KINDS, build_index
from repro.service.publish import EpochDelta

__all__ = ["ArraySnapshot", "CoordinateSnapshot", "SnapshotStore"]


def _snapshot_arrays(snapshot) -> Tuple[List[str], np.ndarray, np.ndarray]:
    """``(node_ids, components, heights)`` for either snapshot form."""
    arrays = getattr(snapshot, "arrays", None)
    if arrays is not None:
        return arrays()
    node_ids = snapshot.node_ids()
    if not node_ids:
        return node_ids, np.empty((0, 1), dtype=np.float64), np.empty(0, dtype=np.float64)
    components = np.asarray(
        [snapshot.coordinates[node_id].components for node_id in node_ids],
        dtype=np.float64,
    )
    heights = np.asarray(
        [snapshot.coordinates[node_id].height for node_id in node_ids],
        dtype=np.float64,
    )
    return node_ids, components, heights


class CoordinateSnapshot:
    """An immutable, versioned point-in-time view of node coordinates."""

    __slots__ = ("version", "coordinates", "source")

    def __init__(
        self,
        version: int,
        coordinates: Mapping[str, Coordinate],
        *,
        source: str = "",
    ) -> None:
        self.version = version
        #: Read-only mapping; the backing dict is owned by the snapshot and
        #: never mutated after construction.
        self.coordinates: Mapping[str, Coordinate] = MappingProxyType(dict(coordinates))
        #: Free-form provenance label (scenario name, trace id, ...).
        self.source = source

    def __len__(self) -> int:
        return len(self.coordinates)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.coordinates

    def coordinate_of(self, node_id: str) -> Optional[Coordinate]:
        return self.coordinates.get(node_id)

    def node_ids(self) -> List[str]:
        return list(self.coordinates)

    def items(self) -> Iterator[Tuple[str, Coordinate]]:
        return iter(self.coordinates.items())

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "source": self.source,
            "coordinates": {
                node_id: {
                    "components": list(coordinate.components),
                    "height": coordinate.height,
                }
                for node_id, coordinate in self.coordinates.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CoordinateSnapshot":
        if not isinstance(payload, Mapping):
            raise ValueError(
                "malformed snapshot: top-level JSON must be an object, "
                f"got {type(payload).__name__}"
            )
        entries = payload.get("coordinates")
        if not isinstance(entries, Mapping):
            raise ValueError("malformed snapshot: missing 'coordinates' mapping")
        coordinates = {}
        for node_id, entry in entries.items():
            try:
                components = entry["components"]
            except (TypeError, KeyError):
                raise ValueError(
                    f"malformed snapshot: entry for {node_id!r} has no 'components'"
                ) from None
            try:
                coordinates[node_id] = Coordinate(components, entry.get("height", 0.0))
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"malformed snapshot: entry for {node_id!r}: {exc}"
                ) from None
        try:
            version = int(payload.get("version", 1))
        except (TypeError, ValueError):
            raise ValueError(
                f"malformed snapshot: 'version' must be an integer, "
                f"got {payload.get('version')!r}"
            ) from None
        return cls(version, coordinates, source=str(payload.get("source", "")))

    def save(self, path: Path) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path: Path) -> "CoordinateSnapshot":
        """Load a snapshot JSON file.

        Every failure mode a caller can hit -- missing file, unreadable
        file, invalid JSON, valid JSON of the wrong shape -- surfaces as
        ``OSError`` or ``ValueError`` with the offending path in the
        message, so command-line front ends can report one clear line
        instead of a traceback.
        """
        try:
            text = Path(path).read_text()
        except FileNotFoundError:
            raise FileNotFoundError(f"snapshot file {path} does not exist") from None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"snapshot file {path} is not valid JSON: {exc}") from None
        try:
            return cls.from_dict(payload)
        except ValueError as exc:
            raise ValueError(f"snapshot file {path}: {exc}") from None


class ArraySnapshot:
    """An immutable, versioned snapshot backed by flat NumPy arrays.

    Same read API as :class:`CoordinateSnapshot` (duck-typed: ``version``,
    ``coordinate_of``, ``node_ids``, ``items``, ``coordinates``, ...), but
    the backing store is three aligned arrays instead of a mapping of
    per-node objects.  The arrays are *adopted*, not copied, and marked
    read-only -- the zero-copy half of the simulation -> service bridge.
    ``Coordinate`` objects are materialised lazily, one per
    ``coordinate_of`` lookup; batch consumers (the ``dense`` index) never
    materialise any.
    """

    __slots__ = (
        "version",
        "source",
        "_node_ids",
        "_components",
        "_heights",
        "_row_of",
        "_mapping",
    )

    def __init__(
        self,
        version: int,
        node_ids: Sequence[str],
        components: np.ndarray,
        heights: Optional[np.ndarray] = None,
        *,
        source: str = "",
    ) -> None:
        components = np.asarray(components, dtype=np.float64)
        if components.ndim != 2 or components.shape[1] < 1:
            raise ValueError("components must be a (n, d) array with d >= 1")
        ids = list(node_ids)
        if len(ids) != components.shape[0]:
            raise ValueError(
                f"{len(ids)} node ids for {components.shape[0]} coordinate rows"
            )
        if heights is None:
            heights = np.zeros(len(ids), dtype=np.float64)
        else:
            heights = np.asarray(heights, dtype=np.float64)
            if heights.shape != (len(ids),):
                raise ValueError("heights must be a (n,) array aligned with node_ids")
        if len(ids) and (
            not np.isfinite(components).all()
            or not np.isfinite(heights).all()
            or (heights < 0.0).any()
        ):
            raise ValueError(
                "coordinate components must be finite and heights finite and non-negative"
            )
        components.setflags(write=False)
        heights.setflags(write=False)
        self.version = version
        self.source = source
        self._node_ids = ids
        self._components = components
        self._heights = heights
        self._row_of: Optional[Dict[str, int]] = None
        self._mapping: Optional[Mapping[str, Coordinate]] = None

    # -- array access (the zero-copy read path) ------------------------
    def arrays(self) -> Tuple[List[str], np.ndarray, np.ndarray]:
        """``(node_ids, components (n, d), heights (n,))``, no copies."""
        return self._node_ids, self._components, self._heights

    # -- CoordinateSnapshot-compatible API -----------------------------
    def __len__(self) -> int:
        return len(self._node_ids)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._row_index

    @property
    def _row_index(self) -> Dict[str, int]:
        if self._row_of is None:
            self._row_of = {node_id: row for row, node_id in enumerate(self._node_ids)}
        return self._row_of

    def coordinate_of(self, node_id: str) -> Optional[Coordinate]:
        row = self._row_index.get(node_id)
        if row is None:
            return None
        return Coordinate(self._components[row].tolist(), float(self._heights[row]))

    def node_ids(self) -> List[str]:
        return list(self._node_ids)

    def items(self) -> Iterator[Tuple[str, Coordinate]]:
        for row, node_id in enumerate(self._node_ids):
            yield node_id, Coordinate(
                self._components[row].tolist(), float(self._heights[row])
            )

    @property
    def coordinates(self) -> Mapping[str, Coordinate]:
        """Object-based view, materialised once on first use.

        Exists so object-path consumers (non-dense index builds, commits
        layered on top of an array epoch) keep working; the hot read path
        never touches it.
        """
        if self._mapping is None:
            self._mapping = MappingProxyType(dict(self.items()))
        return self._mapping

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "source": self.source,
            "coordinates": {
                node_id: {
                    "components": self._components[row].tolist(),
                    "height": float(self._heights[row]),
                }
                for row, node_id in enumerate(self._node_ids)
            },
        }

    def save(self, path: Path) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")


class SnapshotStore:
    """Ingests streaming coordinate updates and publishes versioned views.

    Parameters
    ----------
    index_kind:
        Spatial index built for published versions (``linear``, ``vptree``
        or ``grid``; see :mod:`repro.service.index`).
    history:
        How many published versions stay addressable through :meth:`at`
        (older versions are forgotten; their snapshots remain valid for
        any reader still holding one).
    """

    def __init__(self, *, index_kind: str = "vptree", history: int = 4) -> None:
        if index_kind not in INDEX_KINDS:
            raise ValueError(
                f"unknown index kind {index_kind!r}; known: {list(INDEX_KINDS)}"
            )
        if history < 1:
            raise ValueError("history must be >= 1")
        self.index_kind = index_kind
        self.history = history
        self._lock = threading.Lock()
        self._staged: Dict[str, Optional[Coordinate]] = {}
        self._latest = CoordinateSnapshot(0, {})
        self._versions: Dict[int, CoordinateSnapshot] = {0: self._latest}
        self._indexes: Dict[int, CoordinateIndex] = {}
        self._ingested = 0

    # -- ingest (write path) -------------------------------------------
    def apply(self, node_id: str, coordinate: Coordinate) -> None:
        """Stage one coordinate update for the next commit."""
        with self._lock:
            self._staged[node_id] = coordinate
            self._ingested += 1

    def apply_many(self, coordinates: Mapping[str, Coordinate]) -> None:
        with self._lock:
            for node_id, coordinate in coordinates.items():
                self._staged[node_id] = coordinate
                self._ingested += 1

    def retire(self, node_id: str) -> None:
        """Stage the removal of a node (e.g. it left the overlay)."""
        with self._lock:
            self._staged[node_id] = None
            self._ingested += 1

    def ingest_collector(self, collector, *, level: str = "application") -> None:
        """Stage every node's latest coordinate from a metrics collector.

        ``collector`` is anything exposing
        ``latest_coordinates(level=...)`` -- in practice the
        :class:`~repro.metrics.collector.MetricsCollector` attached to a
        netsim or replay run.
        """
        self.apply_many(collector.latest_coordinates(level=level))

    @property
    def pending_updates(self) -> int:
        """Staged updates awaiting the next commit."""
        with self._lock:
            return len(self._staged)

    @property
    def ingested_updates(self) -> int:
        """Total updates ever staged (commit resets nothing)."""
        with self._lock:
            return self._ingested

    def commit(self, *, source: str = "") -> CoordinateSnapshot:
        """Publish staged updates as a new immutable version.

        A no-op commit (nothing staged) returns the current snapshot
        without minting a new version.
        """
        with self._lock:
            if not self._staged:
                return self._latest
            merged = dict(self._latest.coordinates)
            for node_id, coordinate in self._staged.items():
                if coordinate is None:
                    merged.pop(node_id, None)
                else:
                    merged[node_id] = coordinate
            self._staged.clear()
            snapshot = CoordinateSnapshot(
                self._latest.version + 1, merged, source=source or self._latest.source
            )
            self._publish_locked(snapshot)
            return snapshot

    def _publish_locked(self, snapshot) -> None:
        """Install ``snapshot`` as latest and sweep history (lock held)."""
        self._latest = snapshot
        self._versions[snapshot.version] = snapshot
        floor = snapshot.version - self.history + 1
        for version in [v for v in self._versions if v < floor]:
            self._versions.pop(version, None)
        # Swept independently of _versions: index_for() may have
        # memoised an index whose version was already evicted above.
        for version in [v for v in self._indexes if v < floor]:
            self._indexes.pop(version, None)

    def publish_epoch(
        self,
        node_ids: Sequence[str],
        components: np.ndarray,
        heights: Optional[np.ndarray] = None,
        *,
        source: str = "",
    ) -> ArraySnapshot:
        """Publish whole-population arrays as the next immutable version.

        The full half of the :class:`~repro.service.publish.EpochPublisher`
        protocol and the zero-copy ingest path: the arrays are adopted
        (and frozen) as an :class:`ArraySnapshot` -- no staging dict, no
        per-node ``Coordinate`` objects.  Pass copies when the source
        arrays keep mutating (a still-running simulation); a finished
        epoch can be handed over as-is.  Raises if object updates are
        currently staged, so a mixed write pattern can never silently
        drop them.
        """
        with self._lock:
            if self._staged:
                raise ValueError(
                    "cannot publish an array snapshot while object updates are "
                    "staged; commit() or discard them first"
                )
            snapshot = ArraySnapshot(
                self._latest.version + 1,
                node_ids,
                components,
                heights,
                source=source or self._latest.source,
            )
            self._publish_locked(snapshot)
            self._ingested += len(snapshot)
            return snapshot

    def publish_arrays(
        self,
        node_ids: Sequence[str],
        components: np.ndarray,
        heights: Optional[np.ndarray] = None,
        *,
        source: str = "",
    ) -> ArraySnapshot:
        """Deprecated alias of :meth:`publish_epoch` (same semantics)."""
        warnings.warn(
            "SnapshotStore.publish_arrays() is deprecated; use publish_epoch() "
            "(the EpochPublisher protocol entry point)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.publish_epoch(node_ids, components, heights, source=source)

    def publish_delta(self, delta: EpochDelta) -> ArraySnapshot:
        """Apply an incremental epoch on top of the latest version.

        The incremental half of the
        :class:`~repro.service.publish.EpochPublisher` protocol.  The new
        :class:`ArraySnapshot` is built by copy-on-write: the base arrays
        are copied once (a straight memcpy), only the touched rows are
        rewritten, removed rows are compacted out and genuinely new nodes
        append after the survivors -- exactly the population a
        from-scratch publish of the final state would hold, byte for
        byte.  When the base version's spatial index is memoised, the new
        version's index is *derived* from it incrementally
        (``delta_applied``) instead of rebuilt, which is what makes
        millisecond epoch rollover possible at low churn; past the
        overlay budget the derivation declines and the next query
        compacts via an ordinary full build.

        An empty delta still mints a new version (sharing the base
        arrays), keeping delta-fed and full-fed stores in version
        lockstep.
        """
        if not isinstance(delta, EpochDelta):
            raise TypeError(
                f"publish_delta() needs an EpochDelta, got {type(delta).__name__}"
            )
        with self._lock:
            if self._staged:
                raise ValueError(
                    "cannot publish a delta while object updates are "
                    "staged; commit() or discard them first"
                )
            base = self._latest
            prev_index = self._indexes.get(base.version)
            snapshot = self._apply_delta_locked(base, delta)
            self._publish_locked(snapshot)
            self._ingested += delta.changed_count
            if prev_index is not None:
                derive = getattr(prev_index, "delta_applied", None)
                if derive is not None:
                    derived = derive(
                        delta.node_ids,
                        delta.components,
                        delta.heights,
                        delta.removed_ids,
                    )
                    if derived is not None:
                        self._indexes[snapshot.version] = derived
            return snapshot

    def _apply_delta_locked(self, base, delta: EpochDelta) -> ArraySnapshot:
        """The base snapshot with ``delta`` applied, as a new ArraySnapshot."""
        source = delta.source or base.source
        node_ids, components, heights = _snapshot_arrays(base)
        if not node_ids:
            # Empty base: the delta's rows are the whole population
            # (removals of unknown ids are ignored, as everywhere).
            return ArraySnapshot(
                base.version + 1,
                list(delta.node_ids),
                delta.components,
                delta.heights,
                source=source,
            )
        changed = delta.node_ids
        removed = set(delta.removed_ids)
        if not changed and not removed:
            # Version lockstep without copying: share the frozen arrays.
            return ArraySnapshot(
                base.version + 1, node_ids, components, heights, source=source
            )
        if changed and delta.components.shape[1] != components.shape[1]:
            raise ValueError(
                f"delta dimensionality {delta.components.shape[1]} does not "
                f"match snapshot dimensionality {components.shape[1]}"
            )
        row_of = {node_id: row for row, node_id in enumerate(node_ids)}
        work_components = components.copy()
        work_heights = heights.copy()
        existing_rows: List[int] = []
        existing_positions: List[int] = []
        added_positions: List[int] = []
        for position, node_id in enumerate(changed):
            row = row_of.get(node_id)
            if row is None:
                added_positions.append(position)
            else:
                existing_rows.append(row)
                existing_positions.append(position)
        if existing_rows:
            work_components[existing_rows] = delta.components[existing_positions]
            work_heights[existing_rows] = delta.heights[existing_positions]
        if removed:
            keep = np.asarray(
                [node_id not in removed for node_id in node_ids], dtype=bool
            )
            new_ids = [node_id for node_id in node_ids if node_id not in removed]
            if len(new_ids) != len(node_ids):
                work_components = work_components[keep]
                work_heights = work_heights[keep]
        else:
            new_ids = list(node_ids)
        if added_positions:
            work_components = np.concatenate(
                [work_components, delta.components[added_positions]]
            )
            work_heights = np.concatenate(
                [work_heights, delta.heights[added_positions]]
            )
            new_ids.extend(changed[position] for position in added_positions)
        return ArraySnapshot(
            base.version + 1, new_ids, work_components, work_heights, source=source
        )

    # -- read path ------------------------------------------------------
    def latest(self) -> CoordinateSnapshot:
        """The most recently committed snapshot (version 0 when empty)."""
        with self._lock:
            return self._latest

    @property
    def version(self) -> int:
        return self.latest().version

    def at(self, version: int) -> CoordinateSnapshot:
        """A retained historical version; raises KeyError once evicted."""
        with self._lock:
            try:
                return self._versions[version]
            except KeyError:
                raise KeyError(
                    f"snapshot version {version} is not retained "
                    f"(history={self.history}, latest={self._latest.version})"
                ) from None

    def index_for(self, snapshot: Optional[CoordinateSnapshot] = None) -> CoordinateIndex:
        """A spatial index over ``snapshot`` (default: latest), memoised.

        The index is built once per version and shared by all queries
        against that version; because snapshots are immutable the memoised
        index can never go stale.
        """
        target = snapshot if snapshot is not None else self.latest()
        with self._lock:
            index = self._indexes.get(target.version)
        if index is not None:
            return index
        # Built outside the lock so a large build never blocks ingest, and
        # finalised eagerly so concurrent readers of the published index
        # never trigger (and race on) a lazy rebuild.
        index = build_index(self.index_kind)
        ingest_arrays = getattr(index, "ingest_arrays", None)
        arrays = getattr(target, "arrays", None)
        if ingest_arrays is not None and arrays is not None:
            # Array snapshot -> dense index: adopt the snapshot arrays
            # directly, no per-node objects anywhere on the path.
            ingest_arrays(*arrays())
        else:
            index.update_many(dict(target.coordinates))
        finalise = getattr(index, "_ensure_built", None)
        if finalise is not None:
            finalise()
        with self._lock:
            if target.version not in self._versions:
                # A reader holding an already-evicted snapshot: hand it the
                # index but do not memoise it, or nothing would ever
                # reclaim it (commit only sweeps retained versions).
                return index
            return self._indexes.setdefault(target.version, index)

    # -- convenience ----------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        node_ids: Sequence[str],
        components: np.ndarray,
        heights: Optional[np.ndarray] = None,
        *,
        index_kind: str = "dense",
        source: str = "",
    ) -> "SnapshotStore":
        """A store pre-loaded with one array-backed snapshot (version 1)."""
        store = cls(index_kind=index_kind)
        store.publish_epoch(node_ids, components, heights, source=source)
        return store

    @classmethod
    def from_coordinates(
        cls,
        coordinates: Mapping[str, Coordinate],
        *,
        index_kind: str = "vptree",
        source: str = "",
    ) -> "SnapshotStore":
        """A store pre-loaded with one committed snapshot."""
        store = cls(index_kind=index_kind)
        store.apply_many(coordinates)
        store.commit(source=source)
        return store

    @classmethod
    def from_snapshot(
        cls, snapshot: CoordinateSnapshot, *, index_kind: str = "vptree"
    ) -> "SnapshotStore":
        """A store republishing ``snapshot`` under its *original* version.

        Query results served from a reloaded artifact stay attributable to
        the version recorded in the file (renumbering to 1 would break the
        correlation); later commits continue counting from there.
        """
        store = cls(index_kind=index_kind)
        with store._lock:
            published = CoordinateSnapshot(
                snapshot.version, dict(snapshot.coordinates), source=snapshot.source
            )
            store._latest = published
            store._versions = {published.version: published}
        return store
