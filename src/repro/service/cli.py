"""The ``repro serve`` and ``repro query`` command groups.

Usage::

    repro serve mesh-replay --out snapshot.json
    repro serve query-service-mixed --queries 1000 --mix mixed --index vptree

    repro query --snapshot snapshot.json info
    repro query --snapshot snapshot.json knn n0012 --k 5
    repro query --snapshot snapshot.json pairwise n0012 n0040
    repro query --snapshot snapshot.json centroid n0001 n0002 n0003
    repro query --snapshot snapshot.json workload --count 2000 --mix mixed \
        --index vptree --compare-linear

``serve`` runs a registered scenario through the serial kernel, ingests
the final application-level coordinates into a versioned snapshot store,
optionally writes the snapshot to disk, and (with ``--queries``) drives a
deterministic workload through the batching planner, printing per-kind
stats.  ``query`` answers one-off questions against a saved snapshot, or
replays a whole workload with ``--compare-linear`` verifying the spatial
index against the linear oracle.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.service.index import INDEX_KINDS
from repro.service.planner import Query, QueryError, QueryPlanner
from repro.service.snapshot import CoordinateSnapshot, SnapshotStore
from repro.service.workload import QUERY_MIXES, generate_queries, run_workload

__all__ = ["main"]


def _print_stats(stats: Dict[str, Any]) -> None:
    kinds = stats.get("kinds", {})
    if kinds:
        width = max(len(kind) for kind in kinds)
        header = (
            f"{'kind':<{width}}  {'served':>7}  {'cached':>7}  "
            f"{'p50 us':>9}  {'p99 us':>9}"
        )
        print(header)
        print("-" * len(header))
        for kind, entry in sorted(kinds.items()):
            p50 = entry.get("p50_us")
            p99 = entry.get("p99_us")
            print(
                f"{kind:<{width}}  {entry['executed'] + entry['cache_hits']:>7}  "
                f"{entry['cache_hits']:>7}  "
                f"{p50:>9.1f}  {p99:>9.1f}"
                if p50 is not None
                else f"{kind:<{width}}  {entry['executed'] + entry['cache_hits']:>7}  "
                f"{entry['cache_hits']:>7}  {'-':>9}  {'-':>9}"
            )
    cache = stats.get("cache", {})
    print(
        f"cache: {cache.get('entries', 0)} entries, {cache.get('hits', 0)} hits, "
        f"{cache.get('misses', 0)} misses, {cache.get('expirations', 0)} expirations, "
        f"{cache.get('evictions_lru', 0)} lru / "
        f"{cache.get('evictions_rollover', 0)} rollover evictions; "
        f"{stats.get('batches_flushed', 0)} batch(es)"
    )


def _run_workload_against(
    store: SnapshotStore,
    *,
    count: int,
    mix: str,
    seed: int,
    k: int,
    radius_ms: float,
    batch_size: int,
    compare_linear: bool,
) -> int:
    snapshot = store.latest()
    queries = generate_queries(
        snapshot.node_ids(), count, mix=mix, seed=seed, k=k, radius_ms=radius_ms
    )
    planner = QueryPlanner(store)
    report = run_workload(planner, queries, batch_size=batch_size)
    print(
        f"{report.query_count} queries in {report.elapsed_s:.3f}s "
        f"({report.queries_per_s:,.0f} q/s, cache hit rate "
        f"{report.cache_hit_rate:.1%}, checksum {report.checksum[:12]})"
    )
    _print_stats(dict(report.stats))
    if compare_linear:
        linear_store = SnapshotStore.from_snapshot(snapshot, index_kind="linear")
        linear_report = run_workload(
            QueryPlanner(linear_store), queries, batch_size=batch_size
        )
        identical = linear_report.checksum == report.checksum
        speedup = (
            linear_report.elapsed_s / report.elapsed_s
            if report.elapsed_s > 0
            else float("nan")
        )
        print(
            f"linear oracle: {linear_report.elapsed_s:.3f}s -> speedup "
            f"{speedup:.2f}x, identical results: {identical}"
        )
        if not identical:
            print("error: spatial index diverged from the linear oracle", file=sys.stderr)
            return 1
    return 0


# ----------------------------------------------------------------------
# repro serve
# ----------------------------------------------------------------------
def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.engine.kernel import run_scenario
    from repro.scenarios.registry import get_scenario
    from repro.scenarios.spec import ScenarioSpec

    spec = get_scenario(args.scenario)
    if args.seed is not None:
        spec = ScenarioSpec.from_dict({**spec.to_dict(), "seed": args.seed})
    print(f"running scenario {spec.name!r} ({spec.mode}, {spec.network.nodes} nodes)...")
    run = run_scenario(spec)
    store = SnapshotStore(index_kind=args.index)
    store.ingest_collector(run.collector, level=args.level)
    snapshot = store.commit(source=spec.name)
    print(
        f"snapshot v{snapshot.version}: {len(snapshot)} node coordinates "
        f"({args.level} level, {args.index} index)"
    )
    if args.out is not None:
        snapshot.save(args.out)
        print(f"snapshot written to {args.out}")
    if args.queries > 0:
        return _run_workload_against(
            store,
            count=args.queries,
            mix=args.mix,
            seed=spec.seed,
            k=args.k,
            radius_ms=args.radius,
            batch_size=args.batch_size,
            compare_linear=args.compare_linear,
        )
    return 0


# ----------------------------------------------------------------------
# repro query
# ----------------------------------------------------------------------
def _load_store(args: argparse.Namespace) -> SnapshotStore:
    snapshot = CoordinateSnapshot.load(args.snapshot)
    return SnapshotStore.from_snapshot(snapshot, index_kind=args.index)


def _print_payload(payload: Any) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_query_info(args: argparse.Namespace) -> int:
    snapshot = CoordinateSnapshot.load(args.snapshot)
    dimensions = sorted({c.dimensions for c in snapshot.coordinates.values()})
    heights = sum(1 for c in snapshot.coordinates.values() if c.height > 0.0)
    print(
        f"snapshot v{snapshot.version} (source {snapshot.source or '-'}): "
        f"{len(snapshot)} nodes, dimensions {dimensions}, "
        f"{heights} with non-zero height"
    )
    return 0


def _cmd_query_single(args: argparse.Namespace, query: Query) -> int:
    planner = QueryPlanner(_load_store(args))
    result = planner.execute(query)
    _print_payload(result.payload)
    return 0


def _cmd_query_workload(args: argparse.Namespace) -> int:
    return _run_workload_against(
        _load_store(args),
        count=args.count,
        mix=args.mix,
        seed=args.seed,
        k=args.k,
        radius_ms=args.radius,
        batch_size=args.batch_size,
        compare_linear=args.compare_linear,
    )


# ----------------------------------------------------------------------
# Parsers
# ----------------------------------------------------------------------
def _add_workload_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mix",
        choices=sorted(QUERY_MIXES),
        default="mixed",
        help="query mix served by the workload",
    )
    parser.add_argument("--k", type=int, default=3, help="k for knn queries")
    parser.add_argument(
        "--radius", type=float, default=50.0, help="radius (ms) for range queries"
    )
    parser.add_argument("--batch-size", type=int, default=64, help="planner batch size")
    parser.add_argument(
        "--compare-linear",
        action="store_true",
        help="replay the workload on the linear oracle and verify identical results",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Serve coordinate snapshots and query them.",
    )
    groups = parser.add_subparsers(dest="group", required=True)

    serve = groups.add_parser(
        "serve", help="run a scenario and serve its coordinates as a snapshot"
    )
    serve.add_argument("scenario", help="registered scenario name")
    serve.add_argument("--seed", type=int, default=None, help="override the scenario seed")
    serve.add_argument(
        "--index", choices=INDEX_KINDS, default="vptree", help="spatial index kind"
    )
    serve.add_argument(
        "--level",
        choices=("application", "system"),
        default="application",
        help="coordinate level to snapshot",
    )
    serve.add_argument("--out", type=Path, default=None, help="write the snapshot JSON here")
    serve.add_argument(
        "--queries", type=int, default=0, help="serve this many workload queries"
    )
    _add_workload_options(serve)
    serve.set_defaults(handler=_cmd_serve)

    query = groups.add_parser("query", help="query a saved coordinate snapshot")
    query.add_argument(
        "--snapshot", type=Path, required=True, help="snapshot JSON from 'repro serve'"
    )
    query.add_argument(
        "--index", choices=INDEX_KINDS, default="vptree", help="spatial index kind"
    )
    commands = query.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="summarise the snapshot").set_defaults(
        handler=_cmd_query_info
    )

    knn = commands.add_parser("knn", help="k nearest nodes to a node")
    knn.add_argument("target")
    knn.add_argument("--k", type=int, default=3)
    knn.set_defaults(handler=lambda a: _cmd_query_single(a, Query.knn(a.target, k=a.k)))

    nearest = commands.add_parser("nearest", help="single nearest node to a node")
    nearest.add_argument("target")
    nearest.set_defaults(handler=lambda a: _cmd_query_single(a, Query.nearest(a.target)))

    within = commands.add_parser("range", help="all nodes within a predicted RTT")
    within.add_argument("target")
    within.add_argument("--radius", type=float, required=True, help="radius in ms")
    within.set_defaults(
        handler=lambda a: _cmd_query_single(a, Query.range(a.target, a.radius))
    )

    pairwise = commands.add_parser("pairwise", help="predicted RTT between two nodes")
    pairwise.add_argument("a")
    pairwise.add_argument("b")
    pairwise.set_defaults(
        handler=lambda a: _cmd_query_single(a, Query.pairwise(a.a, a.b))
    )

    centroid = commands.add_parser(
        "centroid", help="latency-optimal meeting point of a node group"
    )
    centroid.add_argument("members", nargs="*", help="node ids (default: all)")
    centroid.set_defaults(
        handler=lambda a: _cmd_query_single(a, Query.centroid(tuple(a.members)))
    )

    workload = commands.add_parser("workload", help="serve a deterministic query mix")
    workload.add_argument("--count", type=int, default=1000, help="number of queries")
    workload.add_argument("--seed", type=int, default=0, help="workload seed")
    _add_workload_options(workload)
    workload.set_defaults(handler=_cmd_query_workload)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (QueryError, OSError, ValueError) as exc:
        # Covers every snapshot-loading failure mode (missing file,
        # permission problems, invalid JSON, wrong JSON shape) plus bad
        # query parameters: one clear line on stderr, nonzero exit.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
