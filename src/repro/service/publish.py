"""The unified epoch-publish API: :class:`EpochPublisher` + :class:`EpochDelta`.

Before this module existed the publish surface was a three-way duck-typed
sprawl: ``SnapshotStore.publish_arrays``, ``ShardedCoordinateStore``'s
``publish_arrays``/``publish_coordinates``, and ``run_batch_simulation``'s
informal ``publish_store`` contract ("anything exposing publish_arrays").
Every publisher now implements one explicit protocol with two entry
points:

* :meth:`EpochPublisher.publish_epoch` -- a **full** epoch: the complete
  population's arrays, exactly the old ``publish_arrays`` semantics.
* :meth:`EpochPublisher.publish_delta` -- an **incremental** epoch: only
  the rows that changed since the previous generation (plus explicit
  removals), carried by an :class:`EpochDelta`.  The store applies it by
  copy-on-write of the touched rows and derives the new generation's
  spatial index incrementally, which is what makes millisecond epoch
  rollover possible at low churn (the paper's coordinates are stable
  precisely because most nodes barely move between update windows).

The delta path never weakens the repo's oracle-identity contract: a
delta-published generation is *byte-identical* -- coordinates, query
results including tie order, health snapshots -- to publishing the same
final population from scratch.  The equivalence sweep in
``tests/test_publish.py`` pins this across all three index kinds.

This module is dependency-light (numpy + stdlib) so ``netsim`` can import
the protocol without pulling in the serving stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

__all__ = ["EpochDelta", "EpochPublisher"]


@dataclass(eq=False)
class EpochDelta:
    """One incremental epoch: the rows that changed, plus removals.

    ``node_ids`` and row ``i`` of ``components``/``heights`` describe the
    new coordinate of one changed-or-added node.  ``removed_ids`` names
    nodes to drop from the population.  A node must not appear in both.
    Applying a delta appends genuinely new nodes after the surviving
    population in ``node_ids`` order, matching what a from-scratch
    publish of the final population would produce.

    ``source`` labels the resulting snapshot (falls back to the base
    snapshot's source when empty) and ``epoch`` is an optional caller
    tick/epoch number carried for observability.
    """

    node_ids: List[str]
    components: np.ndarray
    heights: Optional[np.ndarray] = None
    removed_ids: Tuple[str, ...] = ()
    source: str = ""
    epoch: Optional[int] = None

    def __post_init__(self) -> None:
        self.node_ids = [str(node_id) for node_id in self.node_ids]
        components = np.asarray(self.components, dtype=np.float64)
        if components.ndim != 2:
            if components.size == 0 and not self.node_ids:
                components = components.reshape(0, 1)
            else:
                raise ValueError(
                    f"components must be a (changed, dims) array, got shape {components.shape}"
                )
        if components.shape[0] != len(self.node_ids):
            raise ValueError(
                f"components rows ({components.shape[0]}) must match "
                f"node_ids ({len(self.node_ids)})"
            )
        if components.shape[0] and components.shape[1] < 1:
            raise ValueError("components must have at least one dimension")
        if components.shape[0] and not np.all(np.isfinite(components)):
            raise ValueError("components must be finite")
        if self.heights is None:
            heights = np.zeros(components.shape[0], dtype=np.float64)
        else:
            heights = np.asarray(self.heights, dtype=np.float64)
        if heights.shape != (components.shape[0],):
            raise ValueError(
                f"heights shape {heights.shape} must be ({components.shape[0]},)"
            )
        if heights.size and (not np.all(np.isfinite(heights)) or np.any(heights < 0)):
            raise ValueError("heights must be finite and non-negative")
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ValueError("node_ids must be unique within one delta")
        self.removed_ids = tuple(str(node_id) for node_id in self.removed_ids)
        if len(set(self.removed_ids)) != len(self.removed_ids):
            raise ValueError("removed_ids must be unique within one delta")
        overlap = set(self.node_ids) & set(self.removed_ids)
        if overlap:
            raise ValueError(
                f"nodes cannot be both changed and removed: {sorted(overlap)}"
            )
        self.components = components
        self.heights = heights

    @property
    def changed_count(self) -> int:
        """Rows touched by this delta (changed + removed)."""
        return len(self.node_ids) + len(self.removed_ids)

    @classmethod
    def from_coordinates(
        cls,
        coordinates: Mapping[str, Any],
        *,
        removed_ids: Sequence[str] = (),
        source: str = "",
        epoch: Optional[int] = None,
    ) -> "EpochDelta":
        """Build a delta from a ``{node_id: Coordinate}`` mapping."""
        node_ids = list(coordinates)
        if node_ids:
            components = np.asarray(
                [coordinates[node_id].components for node_id in node_ids],
                dtype=np.float64,
            )
            heights = np.asarray(
                [coordinates[node_id].height for node_id in node_ids],
                dtype=np.float64,
            )
        else:
            components = np.empty((0, 1), dtype=np.float64)
            heights = np.empty(0, dtype=np.float64)
        return cls(
            node_ids,
            components,
            heights,
            removed_ids=tuple(removed_ids),
            source=source,
            epoch=epoch,
        )


@runtime_checkable
class EpochPublisher(Protocol):
    """Anything that can accept coordinate epochs, full or incremental.

    Implemented by :class:`repro.service.snapshot.SnapshotStore`,
    :class:`repro.server.sharding.ShardedCoordinateStore` and
    :class:`repro.server.live.LiveServingHarness`; consumed by
    :func:`repro.netsim.batch.run_batch_simulation` (``publish_store=``).
    """

    def publish_epoch(
        self,
        node_ids: Sequence[str],
        components: np.ndarray,
        heights: Optional[np.ndarray] = None,
        *,
        source: str = "",
    ) -> Any:
        """Publish a complete population as a new generation."""
        ...  # pragma: no cover - protocol stub

    def publish_delta(self, delta: EpochDelta) -> Any:
        """Apply an incremental epoch on top of the latest generation."""
        ...  # pragma: no cover - protocol stub
