"""Deterministic query-load generation for the coordinate service.

A workload is a named *mix* of query kinds plus a seed: the generated
query stream is a pure function of ``(node ids, mix, count, seed,
parameters)``, using the repo-wide labelled-RNG derivation, so the same
workload replayed against a linear or a spatial index -- or on another
machine -- issues byte-identical queries.  That is what lets the scenario
engine run the service as a cell workload (results must be deterministic)
and what lets ``bench_service.py`` attribute throughput differences to the
index alone.

Targets are drawn Zipf-like (rank-skewed) rather than uniformly: a few
popular nodes dominate, which is both closer to real lookup traffic and
what gives the planner's snapshot-versioned cache realistic hit rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.service.planner import Query, QueryPlanner, QueryResult
from repro.stats.sampling import derive_rng

__all__ = ["QUERY_MIXES", "generate_queries", "run_workload", "WorkloadReport", "payload_checksum"]

#: Named query mixes: kind -> weight (normalised at generation time).
QUERY_MIXES: Dict[str, Dict[str, float]] = {
    "knn": {"knn": 1.0},
    "nearest": {"nearest": 1.0},
    "pairwise-latency": {"pairwise": 1.0},
    "centroid": {"centroid": 1.0},
    # Read-path blend: mostly proximity lookups, some latency predictions,
    # the occasional group-meeting-point computation.
    "mixed": {"knn": 0.4, "nearest": 0.25, "range": 0.1, "pairwise": 0.2, "centroid": 0.05},
}


def generate_queries(
    node_ids: Sequence[str],
    count: int,
    *,
    mix: str = "mixed",
    seed: int = 0,
    k: int = 3,
    radius_ms: float = 50.0,
    group_size: int = 5,
    skew: float = 1.1,
) -> List[Query]:
    """A deterministic query stream over ``node_ids``.

    ``skew`` is the Zipf exponent of target popularity (values just above
    1.0 give a heavy but not degenerate head); node popularity rank is the
    node's position in ``node_ids``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if mix not in QUERY_MIXES:
        raise ValueError(f"unknown query mix {mix!r}; known: {sorted(QUERY_MIXES)}")
    nodes = list(node_ids)
    if len(nodes) < 2:
        raise ValueError("query generation needs at least two nodes")
    weights = QUERY_MIXES[mix]
    kinds = sorted(weights)
    total = sum(weights[kind] for kind in kinds)
    cumulative: List[Tuple[float, str]] = []
    acc = 0.0
    for kind in kinds:
        acc += weights[kind] / total
        cumulative.append((acc, kind))

    rng = derive_rng(seed, f"service-workload:{mix}")
    # Zipf-ranked popularity over positions; sampled by inverse CDF.
    ranks = [1.0 / (position + 1) ** skew for position in range(len(nodes))]
    rank_total = sum(ranks)
    popularity: List[float] = []
    acc = 0.0
    for weight in ranks:
        acc += weight / rank_total
        popularity.append(acc)

    def draw_node() -> str:
        u = float(rng.random())
        lo, hi = 0, len(popularity) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if popularity[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return nodes[lo]

    k = min(k, len(nodes) - 1)
    queries: List[Query] = []
    for _ in range(count):
        u = float(rng.random())
        kind = next(kind for threshold, kind in cumulative if u <= threshold)
        if kind == "knn":
            queries.append(Query.knn(draw_node(), k=k))
        elif kind == "nearest":
            queries.append(Query.nearest(draw_node()))
        elif kind == "range":
            queries.append(Query.range(draw_node(), radius_ms))
        elif kind == "pairwise":
            a = draw_node()
            b = draw_node()
            while b == a:
                b = draw_node()
            queries.append(Query.pairwise(a, b))
        else:  # centroid
            size = min(group_size, len(nodes))
            picked = rng.choice(len(nodes), size=size, replace=False)
            queries.append(Query.centroid(tuple(nodes[int(i)] for i in picked)))
    return queries


def payload_checksum(results: Sequence[QueryResult]) -> str:
    """A canonical digest of the answers (order-sensitive).

    Two planners serving the same stream over the same snapshot must
    produce the same checksum regardless of index kind or cache state --
    the cheap way to assert "the spatial index changed nothing".
    """
    import hashlib
    import json

    digest = hashlib.blake2b(digest_size=16)
    for result in results:
        digest.update(
            json.dumps(result.payload, sort_keys=True, separators=(",", ":")).encode()
        )
    return digest.hexdigest()


@dataclass(frozen=True, slots=True)
class WorkloadReport:
    """Outcome of driving one query stream through a planner."""

    query_count: int
    results: Tuple[QueryResult, ...]
    checksum: str
    cache_hit_rate: float
    stats: Mapping[str, Any]
    elapsed_s: float

    @property
    def queries_per_s(self) -> float:
        if self.elapsed_s <= 0.0:
            return float("nan")
        return self.query_count / self.elapsed_s


def run_workload(
    planner: QueryPlanner,
    queries: Sequence[Query],
    *,
    batch_size: int = 64,
    timer=None,
) -> WorkloadReport:
    """Drive ``queries`` through ``planner`` in batches and summarise.

    The checksum, hit rate and stats in the report are deterministic for a
    deterministic stream; only ``elapsed_s`` (and thus ``queries_per_s``)
    depends on the machine.
    """
    import time as _time

    clock = timer if timer is not None else _time.perf_counter
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    results: List[QueryResult] = []
    started = clock()
    for offset in range(0, len(queries), batch_size):
        for query in queries[offset : offset + batch_size]:
            planner.submit(query)
        results.extend(planner.flush())
    elapsed = clock() - started
    return WorkloadReport(
        query_count=len(results),
        results=tuple(results),
        checksum=payload_checksum(results),
        cache_hit_rate=planner.cache_hit_rate(),
        stats=planner.stats(),
        elapsed_s=elapsed,
    )
