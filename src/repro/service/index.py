"""Sub-linear spatial indexes behind the :class:`CoordinateIndex` contract.

The linear scan in :mod:`repro.overlay.knn` is the correctness oracle; the
implementations here answer the same queries -- k-nearest, range, and the
placement 1-median -- without touching every node:

* :class:`VPTreeIndex` -- a vantage-point tree over the predicted-latency
  metric itself.  The coordinate distance ``||x_i - x_j|| + h_i + h_j``
  satisfies the triangle inequality even with Vivaldi height terms, which
  is all the vp-tree's pruning bounds require.  Queries inspect
  ``O(log n)``-ish nodes on the paper's low-dimensional embeddings.
* :class:`GridIndex` -- a uniform grid over the Euclidean components with
  per-cell minimum-height bounds, searched in expanding shells.  Cheaper
  to rebuild than the tree; best for dense, frequently refreshed
  snapshots.
* :class:`DenseIndex` -- batched brute-force over flat NumPy arrays.  Every
  query touches every node, but as one array expression; it is the only
  kind with *batch* entry points (``knn_batch_by_id`` / ``range_batch_by_id``,
  used by the planner to answer a whole same-version batch in one NumPy
  call) and the only kind that ingests an array-backed snapshot without
  materialising per-node objects.

Exactness contract: every query returns *identical* results to the linear
oracle -- same node sets, same predicted RTTs (the exact same
``Coordinate.distance`` floats), same ordering.  Ties are broken by
insertion order, matching the oracle's stable sort over its
insertion-ordered dict; the traversals below therefore track a per-node
insertion sequence number and never prune on bound *equality*, only on
strict excess.

Rebuilds are lazy: mutations mark the structure dirty and the next query
rebuilds it, so bulk ``update_many`` loads cost one build, not n.
"""

from __future__ import annotations

import itertools
import math
from heapq import heappush, heapreplace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.coordinate import Coordinate
from repro.overlay.knn import CoordinateIndex

__all__ = ["INDEX_KINDS", "build_index", "VPTreeIndex", "GridIndex", "DenseIndex"]

#: Registered index kinds, resolvable through :func:`build_index`.
INDEX_KINDS = ("linear", "vptree", "grid", "dense")

#: Entries per vp-tree leaf bucket / target entries per grid cell.
_LEAF_SIZE = 12

#: Overlay/compaction policy for delta-derived indexes (see
#: ``delta_applied``).  A derived index absorbs incremental epochs until
#: the cumulative changed-row footprint exceeds
#: ``max(_OVERLAY_COMPACT_MIN, _OVERLAY_COMPACT_FRACTION * n)``; past
#: that, ``delta_applied`` returns ``None`` and the caller compacts by
#: rebuilding from scratch (the overlay's exact-scan cost would start to
#: erode the sub-linear query bounds).  Small indexes always compact --
#: a full rebuild under a few hundred nodes is already microseconds.
_OVERLAY_COMPACT_MIN = 64
_OVERLAY_COMPACT_FRACTION = 0.25


def _overlay_budget(population: int) -> int:
    """Max changed-row footprint a derived index may carry before compaction."""
    return max(_OVERLAY_COMPACT_MIN, int(_OVERLAY_COMPACT_FRACTION * population))


def _changed_coordinates(
    changed_ids: Sequence[str],
    components: np.ndarray,
    heights: np.ndarray,
) -> List[Tuple[str, Coordinate]]:
    """Materialise a delta's rows as ``(node_id, Coordinate)`` pairs."""
    components = np.asarray(components, dtype=np.float64)
    heights = np.asarray(heights, dtype=np.float64)
    return [
        (node_id, Coordinate(components[position].tolist(), float(heights[position])))
        for position, node_id in enumerate(changed_ids)
    ]


def _loosen(bound: float) -> float:
    """Make a pruning lower bound safe against floating-point rounding.

    Bounds like ``d_v - radius`` are exact in real arithmetic but are
    computed from rounded distances, so they can land a few ulps *above*
    the true distance of a node they are meant to bound -- which would
    prune a node sitting exactly at the k-th-best distance or range
    radius and break the oracle-identity contract on tie-heavy (e.g.
    lattice) inputs.  Loosening by an epsilon that dwarfs accumulated
    rounding error (<= ~1e-15 relative) while staying far below any
    meaningful latency difference means we only ever explore slightly
    more, never less; results stay exact because candidates are always
    scored with the exact ``Coordinate.distance`` floats.
    """
    return bound - 1e-9 * (1.0 + abs(bound))


def build_index(kind: str = "vptree") -> CoordinateIndex:
    """Construct an empty index of the requested kind."""
    if kind == "linear":
        return CoordinateIndex()
    if kind == "vptree":
        return VPTreeIndex()
    if kind == "grid":
        return GridIndex()
    if kind == "dense":
        return DenseIndex()
    raise ValueError(f"unknown index kind {kind!r}; known: {list(INDEX_KINDS)}")


class _SpatialIndex(CoordinateIndex):
    """Shared bookkeeping: insertion sequence numbers and lazy rebuilds."""

    def __init__(self) -> None:
        super().__init__()
        self._seq: Dict[str, int] = {}
        self._next_seq = 0
        self._dirty = True

    # -- maintenance ---------------------------------------------------
    def update(self, node_id: str, coordinate: Coordinate) -> None:
        if node_id not in self._seq:
            self._seq[node_id] = self._next_seq
            self._next_seq += 1
        super().update(node_id, coordinate)
        self._dirty = True

    def remove(self, node_id: str) -> None:
        self._seq.pop(node_id, None)
        super().remove(node_id)
        self._dirty = True

    def _entries(self) -> List[Tuple[int, str, Coordinate]]:
        """(seq, node_id, coordinate), in insertion order."""
        return [
            (self._seq[node_id], node_id, coordinate)
            for node_id, coordinate in self._coordinates.items()
        ]

    def _ensure_built(self) -> None:
        if self._dirty:
            self._rebuild()
            self._dirty = False

    def _rebuild(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class _KBest:
    """A bounded best-k collector ordered by (distance, insertion seq)."""

    __slots__ = ("k", "_heap")

    def __init__(self, k: int) -> None:
        self.k = k
        # Max-heap via negated keys: worst surviving candidate on top.
        self._heap: List[Tuple[float, int, str]] = []

    @property
    def threshold(self) -> float:
        """Current k-th best distance (inf until k candidates are held)."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def offer(self, distance: float, seq: int, node_id: str) -> None:
        if len(self._heap) < self.k:
            heappush(self._heap, (-distance, -seq, node_id))
            return
        worst_distance, worst_seq = -self._heap[0][0], -self._heap[0][1]
        if distance < worst_distance or (distance == worst_distance and seq < worst_seq):
            heapreplace(self._heap, (-distance, -seq, node_id))

    def sorted_results(self) -> List[Tuple[str, float]]:
        ranked = sorted((-d, -seq, node_id) for d, seq, node_id in self._heap)
        return [(node_id, distance) for distance, _, node_id in ranked]


# ----------------------------------------------------------------------
# Vantage-point tree
# ----------------------------------------------------------------------
class _VPNode:
    __slots__ = ("seq", "node_id", "coordinate", "mu", "radius", "children", "bucket")

    def __init__(self) -> None:
        self.seq = 0
        self.node_id = ""
        self.coordinate: Optional[Coordinate] = None
        self.mu = 0.0
        #: Max distance from the vantage to any point in this subtree.
        self.radius = 0.0
        self.children: List[Optional["_VPNode"]] = [None, None]
        self.bucket: Optional[List[Tuple[int, str, Coordinate]]] = None


class VPTreeIndex(_SpatialIndex):
    """Vantage-point tree over the predicted-latency metric.

    The vantage of every subtree is its earliest-inserted entry, so the
    structure -- and therefore traversal order and results -- is a pure
    function of the index contents.

    Incremental epochs (:meth:`delta_applied`) never restructure the
    tree: a derived index shares the immutable tree of its base and
    carries the changed rows in a small unsorted *overlay* scanned
    exactly on every query, with the stale tree entries masked by a
    *tombstone* set.  Results stay byte-identical to a from-scratch
    rebuild because overlay candidates are scored with the same exact
    ``Coordinate.distance`` floats and keep their original insertion
    sequence (relative order is all the tie-break needs).
    """

    def __init__(self) -> None:
        super().__init__()
        self._root: Optional[_VPNode] = None
        #: Node ids whose tree entry is stale (changed or removed).
        self._tombstones: frozenset = frozenset()
        #: Changed/added rows, scanned exactly: (seq, node_id, coordinate).
        self._overlay: Tuple[Tuple[int, str, Coordinate], ...] = ()

    def _rebuild(self) -> None:
        self._tombstones = frozenset()
        self._overlay = ()
        entries = self._entries()
        if not entries:
            self._root = None
            return
        root_holder: List[Optional[_VPNode]] = [None, None]
        stack: List[Tuple[List[Tuple[int, str, Coordinate]], List[Optional[_VPNode]], int]] = [
            (entries, root_holder, 0)
        ]
        while stack:
            group, holder, slot = stack.pop()
            node = _VPNode()
            holder[slot] = node
            if len(group) <= _LEAF_SIZE:
                node.bucket = group
                continue
            seq, node_id, vantage = group[0]
            rest = group[1:]
            distances = [vantage.distance(coordinate) for _, _, coordinate in rest]
            ranked = sorted(distances)
            mu = ranked[(len(ranked) - 1) // 2]
            near = [entry for entry, d in zip(rest, distances) if d <= mu]
            far = [entry for entry, d in zip(rest, distances) if d > mu]
            if not far:
                # No split progress (duplicate-heavy group): finish as a
                # leaf instead of chaining one vantage per level.
                node.bucket = group
                continue
            node.seq, node.node_id, node.coordinate = seq, node_id, vantage
            node.mu = mu
            node.radius = ranked[-1]
            stack.append((near, node.children, 0))
            stack.append((far, node.children, 1))
        self._root = root_holder[0]

    # -- incremental epochs --------------------------------------------
    def delta_applied(
        self,
        changed_ids: Sequence[str],
        changed_components: np.ndarray,
        changed_heights: np.ndarray,
        removed_ids: Sequence[str] = (),
    ) -> Optional["VPTreeIndex"]:
        """A new index with the delta applied, or ``None`` to compact.

        The returned index shares this one's tree; this index is not
        mutated and keeps answering queries for its own generation.
        """
        self._ensure_built()
        if not changed_ids and not removed_ids:
            return self
        if self._root is None:
            return None
        overlay = {entry[1]: entry for entry in self._overlay}
        tombstones = set(self._tombstones)
        coordinates = dict(self._coordinates)
        seqs = dict(self._seq)
        next_seq = self._next_seq
        for node_id, coordinate in _changed_coordinates(
            changed_ids, changed_components, changed_heights
        ):
            seq = seqs.get(node_id)
            if seq is None:
                seq = next_seq
                next_seq += 1
            # Mask any tree entry for this node; harmless when the node
            # was never in the tree (overlay entries bypass tombstones).
            tombstones.add(node_id)
            overlay[node_id] = (seq, node_id, coordinate)
            coordinates[node_id] = coordinate
            seqs[node_id] = seq
        for node_id in removed_ids:
            if node_id not in seqs:
                continue
            tombstones.add(node_id)
            overlay.pop(node_id, None)
            del coordinates[node_id]
            del seqs[node_id]
        # ``tombstones`` is exactly the distinct touched-node footprint
        # (every changed or removed id lands there once); the overlay is a
        # subset of it, so counting both would double-charge changed rows.
        if len(tombstones) > _overlay_budget(len(coordinates)):
            return None
        clone = VPTreeIndex()
        clone._coordinates = coordinates
        clone._seq = seqs
        clone._next_seq = next_seq
        clone._root = self._root
        clone._tombstones = frozenset(tombstones)
        clone._overlay = tuple(overlay.values())
        clone._dirty = False
        return clone

    # -- queries -------------------------------------------------------
    def nearest(
        self,
        target: Coordinate,
        k: int = 1,
        *,
        exclude: Iterable[str] = (),
    ) -> List[Tuple[str, float]]:
        if k < 1:
            raise ValueError("k must be >= 1")
        self._ensure_built()
        if self._root is None:
            return []
        excluded = set(exclude)
        tombstones = self._tombstones
        best = _KBest(k)

        def offer(distance: float, seq: int, node_id: str) -> None:
            if node_id not in excluded and node_id not in tombstones:
                best.offer(distance, seq, node_id)

        # Overlay first: its exact distances tighten the pruning
        # threshold before the tree walk starts.
        for seq, node_id, coordinate in self._overlay:
            if node_id not in excluded:
                best.offer(target.distance(coordinate), seq, node_id)
        stack: List[Tuple[_VPNode, float]] = [(self._root, 0.0)]
        while stack:
            node, bound = stack.pop()
            if bound > best.threshold:
                continue
            if node.bucket is not None:
                for seq, node_id, coordinate in node.bucket:
                    offer(target.distance(coordinate), seq, node_id)
                continue
            assert node.coordinate is not None
            d_v = target.distance(node.coordinate)
            offer(d_v, node.seq, node.node_id)
            near_bound = _loosen(max(0.0, d_v - node.mu))
            far_bound = _loosen(max(0.0, node.mu - d_v, d_v - node.radius))
            near, far = node.children
            # Push the more promising side last so it is explored first
            # and tightens the threshold early.
            order = ((far, far_bound), (near, near_bound))
            if d_v > node.mu:
                order = ((near, near_bound), (far, far_bound))
            for child, child_bound in order:
                if child is not None and child_bound <= best.threshold:
                    stack.append((child, child_bound))
        return best.sorted_results()

    def within(self, target: Coordinate, radius_ms: float) -> List[Tuple[str, float]]:
        if radius_ms < 0.0:
            raise ValueError("radius_ms must be non-negative")
        self._ensure_built()
        if self._root is None:
            return []
        tombstones = self._tombstones
        hits: List[Tuple[float, int, str]] = []
        for seq, node_id, coordinate in self._overlay:
            distance = target.distance(coordinate)
            if distance <= radius_ms:
                hits.append((distance, seq, node_id))
        stack: List[_VPNode] = [self._root]
        while stack:
            node = stack.pop()
            if node.bucket is not None:
                for seq, node_id, coordinate in node.bucket:
                    if node_id in tombstones:
                        continue
                    distance = target.distance(coordinate)
                    if distance <= radius_ms:
                        hits.append((distance, seq, node_id))
                continue
            assert node.coordinate is not None
            d_v = target.distance(node.coordinate)
            if d_v <= radius_ms and node.node_id not in tombstones:
                hits.append((d_v, node.seq, node.node_id))
            near, far = node.children
            if near is not None and _loosen(max(0.0, d_v - node.mu)) <= radius_ms:
                stack.append(near)
            if far is not None and _loosen(
                max(0.0, node.mu - d_v, d_v - node.radius)
            ) <= radius_ms:
                stack.append(far)
        hits.sort()
        return [(node_id, distance) for distance, _, node_id in hits]

    def min_cost_host(self, endpoints: Sequence[Coordinate]) -> Tuple[str, float]:
        if not endpoints:
            raise ValueError("min_cost_host needs at least one endpoint")
        self._ensure_built()
        if self._root is None:
            raise ValueError("cannot run min_cost_host on an empty index")
        tombstones = self._tombstones
        best_cost = float("inf")
        best_seq = -1
        best_host: Optional[str] = None

        def offer(cost: float, seq: int, node_id: str) -> None:
            nonlocal best_cost, best_seq, best_host
            if cost < best_cost or (cost == best_cost and seq < best_seq):
                best_cost, best_seq, best_host = cost, seq, node_id

        for seq, node_id, coordinate in self._overlay:
            offer(
                sum(coordinate.distance(endpoint) for endpoint in endpoints),
                seq,
                node_id,
            )
        stack: List[Tuple[_VPNode, float]] = [(self._root, 0.0)]
        while stack:
            node, bound = stack.pop()
            if bound > best_cost:
                continue
            if node.bucket is not None:
                for seq, node_id, coordinate in node.bucket:
                    if node_id in tombstones:
                        continue
                    offer(
                        sum(coordinate.distance(endpoint) for endpoint in endpoints),
                        seq,
                        node_id,
                    )
                continue
            assert node.coordinate is not None
            per_endpoint = [node.coordinate.distance(endpoint) for endpoint in endpoints]
            if node.node_id not in tombstones:
                offer(sum(per_endpoint), node.seq, node.node_id)
            near, far = node.children
            if near is not None:
                near_bound = _loosen(sum(max(0.0, d - node.mu) for d in per_endpoint))
                if near_bound <= best_cost:
                    stack.append((near, near_bound))
            if far is not None:
                far_bound = _loosen(
                    sum(max(0.0, node.mu - d, d - node.radius) for d in per_endpoint)
                )
                if far_bound <= best_cost:
                    stack.append((far, far_bound))
        if best_host is None:
            # Every tree entry tombstoned and no overlay survivors: the
            # live population is empty, same failure as the oracle's.
            raise ValueError("cannot run min_cost_host on an empty index")
        return best_host, best_cost


# ----------------------------------------------------------------------
# Uniform grid
# ----------------------------------------------------------------------
class GridIndex(_SpatialIndex):
    """Uniform grid over the Euclidean components, searched shell by shell.

    Cell size targets ``n ** (1/d)`` cells per dimension over the bounding
    box.  Candidate cells are pruned with an exact axis-aligned-box lower
    bound plus the query height and the cell's minimum stored height, so
    results remain identical to the oracle even in height-augmented
    spaces.  The placement 1-median query falls back to the inherited
    linear scan -- use :class:`VPTreeIndex` to accelerate placement.
    """

    def __init__(self) -> None:
        super().__init__()
        self._cells: Dict[Tuple[int, ...], List[Tuple[int, str, Coordinate]]] = {}
        self._cell_min_height: Dict[Tuple[int, ...], float] = {}
        self._origin: Tuple[float, ...] = ()
        self._cell_size = 1.0
        self._dims = 0
        self._cells_per_dim = 1
        self._min_height = 0.0
        #: Per-axis bounds over the occupied cell keys.  The shell search
        #: clamps its center into this box; the pruning bounds' validity
        #: needs the box to contain every occupied key, which delta
        #: derivations maintain by expanding it for out-of-box inserts.
        self._key_low: Tuple[int, ...] = ()
        self._key_high: Tuple[int, ...] = ()
        #: Cumulative rows moved by delta derivations since the last full
        #: rebuild; past the overlay budget the geometry is refreshed.
        self._delta_moved = 0

    def _rebuild(self) -> None:
        self._cells.clear()
        self._cell_min_height.clear()
        self._delta_moved = 0
        entries = self._entries()
        if not entries:
            self._dims = 0
            return
        dims = entries[0][2].dimensions
        for _, node_id, coordinate in entries:
            if coordinate.dimensions != dims:
                raise ValueError(
                    f"GridIndex needs uniform dimensionality; {node_id!r} has "
                    f"{coordinate.dimensions}, expected {dims}"
                )
        matrix = np.asarray([c.components for _, _, c in entries], dtype=np.float64)
        heights = np.asarray([c.height for _, _, c in entries], dtype=np.float64)
        lows = matrix.min(axis=0)
        extent = float((matrix.max(axis=0) - lows).max())
        cells_per_dim = max(1, math.ceil(len(entries) ** (1.0 / dims) / 2.0))
        self._dims = dims
        self._origin = tuple(lows.tolist())
        self._cell_size = (extent / cells_per_dim) if extent > 0.0 else 1.0
        self._cells_per_dim = cells_per_dim
        self._min_height = float(heights.min())
        # Cell assignment for the whole population in one array expression
        # (bit-identical to the scalar _cell_key: same subtraction, same
        # division, same floor).
        cell_keys = np.floor((matrix - lows[None, :]) / self._cell_size).astype(np.int64)
        for entry, key_row, height in zip(entries, cell_keys, heights):
            key = tuple(key_row.tolist())
            self._cells.setdefault(key, []).append(entry)
            held = self._cell_min_height.get(key)
            if held is None or height < held:
                self._cell_min_height[key] = float(height)
        self._key_low = tuple(cell_keys.min(axis=0).tolist())
        self._key_high = tuple(cell_keys.max(axis=0).tolist())

    # -- incremental epochs --------------------------------------------
    def delta_applied(
        self,
        changed_ids: Sequence[str],
        changed_components: np.ndarray,
        changed_heights: np.ndarray,
        removed_ids: Sequence[str] = (),
    ) -> Optional["GridIndex"]:
        """A new index with the delta applied, or ``None`` to compact.

        Cell moves are O(changed): the clone shares every untouched cell
        bucket with this index (copy-on-write per bucket) and keeps the
        base geometry.  A stale bounding box only costs pruning
        efficiency, never correctness -- cell bounds stay exact and the
        shell search reaches out-of-box cells -- so the geometry is only
        refreshed when the cumulative churn exceeds the overlay budget.
        """
        self._ensure_built()
        if not changed_ids and not removed_ids:
            return self
        if not self._cells:
            return None
        moved = self._delta_moved + len(changed_ids) + len(removed_ids)
        if moved > _overlay_budget(len(self._coordinates)):
            return None
        changed = _changed_coordinates(changed_ids, changed_components, changed_heights)
        if any(coordinate.dimensions != self._dims for _, coordinate in changed):
            return None
        clone = GridIndex()
        clone._coordinates = dict(self._coordinates)
        clone._seq = dict(self._seq)
        clone._next_seq = self._next_seq
        clone._origin = self._origin
        clone._cell_size = self._cell_size
        clone._dims = self._dims
        clone._cells_per_dim = self._cells_per_dim
        clone._cells = dict(self._cells)
        clone._cell_min_height = dict(self._cell_min_height)
        clone._key_low = self._key_low
        clone._key_high = self._key_high
        clone._delta_moved = moved
        clone._dirty = False
        writable: set = set()
        touched: set = set()

        def bucket_for(key: Tuple[int, ...]) -> List[Tuple[int, str, Coordinate]]:
            bucket = clone._cells.get(key)
            if bucket is None:
                bucket = []
                clone._cells[key] = bucket
                writable.add(key)
            elif key not in writable:
                bucket = list(bucket)
                clone._cells[key] = bucket
                writable.add(key)
            return bucket

        def drop_entry(key: Tuple[int, ...], node_id: str) -> None:
            bucket = bucket_for(key)
            for position, (_, entry_id, _) in enumerate(bucket):
                if entry_id == node_id:
                    del bucket[position]
                    break
            touched.add(key)

        for node_id, coordinate in changed:
            previous = clone._coordinates.get(node_id)
            if previous is not None:
                drop_entry(clone._cell_key(previous.components), node_id)
                seq = clone._seq[node_id]
            else:
                seq = clone._next_seq
                clone._next_seq += 1
            key = clone._cell_key(coordinate.components)
            bucket_for(key).append((seq, node_id, coordinate))
            touched.add(key)
            clone._key_low = tuple(min(a, b) for a, b in zip(clone._key_low, key))
            clone._key_high = tuple(max(a, b) for a, b in zip(clone._key_high, key))
            clone._coordinates[node_id] = coordinate
            clone._seq[node_id] = seq
        for node_id in removed_ids:
            previous = clone._coordinates.pop(node_id, None)
            if previous is None:
                continue
            clone._seq.pop(node_id, None)
            drop_entry(clone._cell_key(previous.components), node_id)
        for key in touched:
            bucket = clone._cells.get(key)
            if not bucket:
                clone._cells.pop(key, None)
                clone._cell_min_height.pop(key, None)
            else:
                clone._cell_min_height[key] = min(
                    coordinate.height for _, _, coordinate in bucket
                )
        clone._min_height = (
            min(clone._cell_min_height.values()) if clone._cell_min_height else 0.0
        )
        return clone

    def _cell_key(self, components: Sequence[float]) -> Tuple[int, ...]:
        return tuple(
            int(math.floor((value - origin) / self._cell_size))
            for value, origin in zip(components, self._origin)
        )

    def _box_lower_bound(self, target: Coordinate, key: Tuple[int, ...]) -> float:
        """Exact lower bound on predicted RTT to any point stored in ``key``."""
        gap_sq = 0.0
        for axis, cell in enumerate(key):
            low = self._origin[axis] + cell * self._cell_size
            high = low + self._cell_size
            value = target.components[axis]
            if value < low:
                gap_sq += (low - value) ** 2
            elif value > high:
                gap_sq += (value - high) ** 2
        return _loosen(math.sqrt(gap_sq) + target.height + self._cell_min_height[key])

    def _shells(self, target: Coordinate):
        """Yield (shell_rank, cell_keys) rings around the target, nearest first."""
        center = tuple(
            min(max(index, low), high)
            for index, low, high in zip(
                self._cell_key(target.components), self._key_low, self._key_high
            )
        )
        occupied = set(self._cells)
        remaining = len(occupied)
        shell = 0
        while remaining > 0:
            keys = []
            if shell == 0:
                candidates: Iterable[Tuple[int, ...]] = (center,)
            else:
                candidates = (
                    tuple(c + o for c, o in zip(center, offsets))
                    for offsets in itertools.product(
                        range(-shell, shell + 1), repeat=self._dims
                    )
                    if max(abs(o) for o in offsets) == shell
                )
            for key in candidates:
                if key in occupied:
                    keys.append(key)
            remaining -= len(keys)
            yield shell, keys
            shell += 1

    def _shell_lower_bound(self, target: Coordinate, shell: int) -> float:
        """Lower bound on predicted RTT to anything in shell ``shell`` or beyond."""
        return _loosen(
            max(0.0, (shell - 1) * self._cell_size) + target.height + self._min_height
        )

    def nearest(
        self,
        target: Coordinate,
        k: int = 1,
        *,
        exclude: Iterable[str] = (),
    ) -> List[Tuple[str, float]]:
        if k < 1:
            raise ValueError("k must be >= 1")
        self._ensure_built()
        if not self._cells:
            return []
        excluded = set(exclude)
        best = _KBest(k)
        for shell, keys in self._shells(target):
            if self._shell_lower_bound(target, shell) > best.threshold:
                break
            for key in keys:
                if self._box_lower_bound(target, key) > best.threshold:
                    continue
                for seq, node_id, coordinate in self._cells[key]:
                    if node_id in excluded:
                        continue
                    best.offer(target.distance(coordinate), seq, node_id)
        return best.sorted_results()

    def within(self, target: Coordinate, radius_ms: float) -> List[Tuple[str, float]]:
        if radius_ms < 0.0:
            raise ValueError("radius_ms must be non-negative")
        self._ensure_built()
        if not self._cells:
            return []
        hits: List[Tuple[float, int, str]] = []
        for shell, keys in self._shells(target):
            if self._shell_lower_bound(target, shell) > radius_ms:
                break
            for key in keys:
                if self._box_lower_bound(target, key) > radius_ms:
                    continue
                for seq, node_id, coordinate in self._cells[key]:
                    distance = target.distance(coordinate)
                    if distance <= radius_ms:
                        hits.append((distance, seq, node_id))
        hits.sort()
        return [(node_id, distance) for distance, _, node_id in hits]


# ----------------------------------------------------------------------
# Dense (batched brute-force) index
# ----------------------------------------------------------------------
#: Queries per chunk of the batched pruning matrix.  Small enough that the
#: ``chunk * n`` float32 working set (32 x 100k = 12.8 MB) stays cache-
#: resident across the kernel's passes; larger chunks measurably regress.
_BATCH_CHUNK = 32


class DenseIndex(_SpatialIndex):
    """Flat-array brute force: every query scans every node, vectorized.

    The whole snapshot lives in three aligned arrays -- node ids, ``(n, d)``
    components and ``(n,)`` heights -- so a query is a handful of NumPy
    expressions over contiguous memory instead of a tree walk.  On the
    paper's low-dimensional embeddings that loses asymptotically to the
    vp-tree for *single* queries but wins decisively for *batches*:
    :meth:`knn_batch_by_id` / :meth:`range_batch_by_id` answer q queries
    against one snapshot version with chunked ``(q, n)`` distance matrices,
    amortising all per-query Python overhead.

    Tie-order guarantee: results are ordered by ``(predicted RTT,
    insertion sequence)``, with the insertion sequence of an array-ingested
    snapshot being its row order -- exactly the linear oracle's stable sort
    over its insertion-ordered dict, so dense results (batched or not) are
    byte-identical to the oracle, ties included.  The selection uses
    ``argpartition`` for the k-th-distance cut and only sorts the candidate
    set at the boundary.

    :meth:`ingest_arrays` adopts snapshot arrays directly (no per-node
    object materialisation); later ``update``/``remove`` calls hydrate the
    object-based maintenance state first, keeping the mutable API intact.
    """

    def __init__(self) -> None:
        super().__init__()
        self._ids: List[str] = []
        self._components = np.empty((0, 0), dtype=np.float64)
        self._heights = np.empty(0, dtype=np.float64)
        self._row_seq = np.empty(0, dtype=np.int64)
        self._row_of: Optional[Dict[str, int]] = None
        self._array_only = False
        #: Lazily built float32 pruning twins (see the batch kernels).
        self._prune = None
        # -- incremental-epoch overlay state (see delta_applied) -------
        # ``_components``/``_heights`` stay the *base* arrays (rows
        # ``[0, _n_base)`` of ``_ids``); changed/added rows live in the
        # overlay arrays appended logically after them, stale base rows
        # are listed in ``_masked_rows``, and dropped ids in ``_removed``.
        self._n_base = 0
        self._ov_ids: List[str] = []
        self._ov_components = np.empty((0, 0), dtype=np.float64)
        self._ov_heights = np.empty(0, dtype=np.float64)
        #: Overlay ids that are genuinely new (not overrides), in
        #: insertion order -- what node_ids() appends after the base.
        self._ov_added: Tuple[str, ...] = ()
        self._removed: frozenset = frozenset()
        self._masked_rows = np.empty(0, dtype=np.int64)
        #: Lazily built {id: base row} over _ids[:_n_base]; shared with
        #: derived clones (the base section never changes between them).
        self._base_rows: Optional[Dict[str, int]] = None

    @property
    def _overlay_active(self) -> bool:
        return bool(self._ov_ids) or bool(self._removed)

    def _clear_overlay(self) -> None:
        self._n_base = len(self._ids)
        self._ov_ids = []
        self._ov_components = np.empty((0, 0), dtype=np.float64)
        self._ov_heights = np.empty(0, dtype=np.float64)
        self._ov_added = ()
        self._removed = frozenset()
        self._masked_rows = np.empty(0, dtype=np.int64)
        self._base_rows = None

    # -- array ingestion (the zero-copy path) --------------------------
    def ingest_arrays(
        self,
        node_ids: Sequence[str],
        components: np.ndarray,
        heights: Optional[np.ndarray] = None,
    ) -> None:
        """Adopt snapshot arrays as the index contents (no copy).

        Replaces any previous contents.  Insertion sequence becomes the
        row order.  The arrays are referenced, not copied; callers must
        treat them as frozen afterwards.
        """
        components = np.asarray(components, dtype=np.float64)
        if components.ndim != 2:
            raise ValueError("components must be a (n, d) array")
        ids = list(node_ids)
        if len(ids) != components.shape[0]:
            raise ValueError(
                f"{len(ids)} node ids for {components.shape[0]} coordinate rows"
            )
        if heights is None:
            heights = np.zeros(len(ids), dtype=np.float64)
        else:
            heights = np.asarray(heights, dtype=np.float64)
            if heights.shape != (len(ids),):
                raise ValueError("heights must be a (n,) array aligned with node_ids")
        self._ids = ids
        self._components = components
        self._heights = heights
        self._row_seq = np.arange(len(ids), dtype=np.int64)
        self._row_of = None
        self._prune = None
        self._coordinates.clear()
        self._seq.clear()
        self._next_seq = 0
        self._array_only = True
        self._dirty = False
        self._clear_overlay()

    @classmethod
    def from_arrays(
        cls,
        node_ids: Sequence[str],
        components: np.ndarray,
        heights: Optional[np.ndarray] = None,
    ) -> "DenseIndex":
        index = cls()
        index.ingest_arrays(node_ids, components, heights)
        return index

    # -- incremental epochs --------------------------------------------
    def _base_row_index(self) -> Dict[str, int]:
        if self._base_rows is None:
            self._base_rows = {
                node_id: row for row, node_id in enumerate(self._ids[: self._n_base])
            }
        return self._base_rows

    def delta_applied(
        self,
        changed_ids: Sequence[str],
        changed_components: np.ndarray,
        changed_heights: np.ndarray,
        removed_ids: Sequence[str] = (),
    ) -> Optional["DenseIndex"]:
        """A new index with the delta applied, or ``None`` to compact.

        The clone shares this index's base arrays (and float32 pruning
        cache) untouched; the changed rows live in small overlay arrays
        merged exactly at query time.  Compaction is near-free for the
        dense kind -- :meth:`ingest_arrays` adopts the new snapshot's
        arrays without copying -- so the overlay budget mainly protects
        the batched kernels, which fall back to per-target exact scans
        while an overlay is active.
        """
        self._ensure_built()
        if not changed_ids and not removed_ids:
            return self
        if not self._array_only or self._n_base == 0:
            return None
        changed_components = np.asarray(changed_components, dtype=np.float64)
        changed_heights = np.asarray(changed_heights, dtype=np.float64)
        if len(changed_ids) and changed_components.shape[1] != self._components.shape[1]:
            return None
        base_rows = self._base_row_index()
        overlay: Dict[str, Tuple[int, np.ndarray, float]] = {}
        for position, node_id in enumerate(self._ov_ids):
            overlay[node_id] = (
                int(self._row_seq[self._n_base + position]),
                self._ov_components[position],
                float(self._ov_heights[position]),
            )
        removed = set(self._removed)
        masked = {int(row) for row in self._masked_rows}
        added = list(self._ov_added)
        next_seq = int(self._row_seq.max()) + 1 if self._row_seq.size else 0
        for position, node_id in enumerate(changed_ids):
            row = changed_components[position].copy()
            height = float(changed_heights[position])
            held = overlay.get(node_id)
            if held is not None:
                overlay[node_id] = (held[0], row, height)
                continue
            base = base_rows.get(node_id)
            if base is not None and node_id not in removed:
                masked.add(base)
                overlay[node_id] = (int(self._row_seq[base]), row, height)
            else:
                if node_id in removed:
                    # Re-add after removal: the base row stays masked and
                    # the node re-enters as an append, like a rebuild.
                    removed.discard(node_id)
                overlay[node_id] = (next_seq, row, height)
                next_seq += 1
                added.append(node_id)
        for node_id in removed_ids:
            held = overlay.pop(node_id, None)
            base = base_rows.get(node_id)
            if held is None and (base is None or node_id in removed):
                continue
            if held is not None and node_id in added:
                added.remove(node_id)
            if base is not None:
                masked.add(base)
                removed.add(node_id)
        if len(overlay) + len(removed) > _overlay_budget(self._n_base):
            return None
        clone = DenseIndex()
        clone._array_only = True
        clone._dirty = False
        clone._components = self._components
        clone._heights = self._heights
        clone._prune = self._prune
        clone._n_base = self._n_base
        ov_ids = list(overlay)
        clone._ov_ids = ov_ids
        dims = self._components.shape[1]
        if ov_ids:
            clone._ov_components = np.asarray(
                [overlay[node_id][1] for node_id in ov_ids], dtype=np.float64
            )
            clone._ov_heights = np.asarray(
                [overlay[node_id][2] for node_id in ov_ids], dtype=np.float64
            )
        else:
            clone._ov_components = np.empty((0, dims), dtype=np.float64)
            clone._ov_heights = np.empty(0, dtype=np.float64)
        clone._ov_added = tuple(added)
        clone._removed = frozenset(removed)
        clone._masked_rows = np.asarray(sorted(masked), dtype=np.int64)
        clone._ids = self._ids[: self._n_base] + ov_ids
        clone._row_seq = np.concatenate(
            [
                self._row_seq[: self._n_base],
                np.asarray([overlay[node_id][0] for node_id in ov_ids], dtype=np.int64),
            ]
        )
        clone._row_of = None
        clone._base_rows = base_rows
        return clone

    def _hydrate_objects(self) -> None:
        """Materialise the object-based maintenance state from the arrays."""
        if not self._array_only:
            return
        if self._overlay_active:
            # Fold overlay/masked state into the object maps (original
            # seqs preserved) and mark the flat arrays stale.
            for node_id in self.node_ids():
                row = self._row_index[node_id]
                if row >= self._n_base:
                    position = row - self._n_base
                    coordinate = Coordinate(
                        self._ov_components[position].tolist(),
                        float(self._ov_heights[position]),
                    )
                else:
                    coordinate = Coordinate(
                        self._components[row].tolist(), float(self._heights[row])
                    )
                self._seq[node_id] = int(self._row_seq[row])
                self._coordinates[node_id] = coordinate
            self._next_seq = (max(self._seq.values()) + 1) if self._seq else 0
            self._clear_overlay()
            self._array_only = False
            self._dirty = True
            return
        for row, node_id in enumerate(self._ids):
            self._seq[node_id] = row
            self._coordinates[node_id] = Coordinate(
                self._components[row].tolist(), float(self._heights[row])
            )
        self._next_seq = len(self._ids)
        self._array_only = False

    # -- maintenance ---------------------------------------------------
    def update(self, node_id: str, coordinate: Coordinate) -> None:
        self._hydrate_objects()
        super().update(node_id, coordinate)

    def remove(self, node_id: str) -> None:
        self._hydrate_objects()
        super().remove(node_id)

    def _rebuild(self) -> None:
        entries = self._entries()
        self._ids = [node_id for _, node_id, _ in entries]
        self._prune = None
        self._clear_overlay()
        if not entries:
            self._components = np.empty((0, 0), dtype=np.float64)
            self._heights = np.empty(0, dtype=np.float64)
            self._row_seq = np.empty(0, dtype=np.int64)
            self._row_of = None
            return
        dims = entries[0][2].dimensions
        for _, node_id, coordinate in entries:
            if coordinate.dimensions != dims:
                raise ValueError(
                    f"DenseIndex needs uniform dimensionality; {node_id!r} has "
                    f"{coordinate.dimensions}, expected {dims}"
                )
        self._components = np.asarray(
            [c.components for _, _, c in entries], dtype=np.float64
        )
        self._heights = np.asarray([c.height for _, _, c in entries], dtype=np.float64)
        self._row_seq = np.asarray([seq for seq, _, _ in entries], dtype=np.int64)
        self._row_of = None

    @property
    def _row_index(self) -> Dict[str, int]:
        if self._row_of is None:
            self._row_of = {node_id: row for row, node_id in enumerate(self._ids)}
        return self._row_of

    # -- accessors (array-backed when object state is absent) ----------
    def __len__(self) -> int:
        if self._array_only:
            # Masked rows are exactly the overridden-or-removed base
            # rows, so combined length minus them is the live count.
            return len(self._ids) - int(self._masked_rows.size)
        return len(self._coordinates)

    def __contains__(self, node_id: str) -> bool:
        if self._array_only:
            return node_id in self._row_index and node_id not in self._removed
        return node_id in self._coordinates

    def coordinate_of(self, node_id: str) -> Optional[Coordinate]:
        if self._array_only:
            row = self._row_index.get(node_id)
            if row is None or node_id in self._removed:
                return None
            if row >= self._n_base:
                position = row - self._n_base
                return Coordinate(
                    self._ov_components[position].tolist(),
                    float(self._ov_heights[position]),
                )
            return Coordinate(
                self._components[row].tolist(), float(self._heights[row])
            )
        return self._coordinates.get(node_id)

    def node_ids(self) -> List[str]:
        if self._array_only:
            if not self._overlay_active:
                return list(self._ids)
            # Overridden ids keep their base position (matching what a
            # from-scratch rebuild of the snapshot would hold); only
            # genuinely new ids append at the end.
            removed = self._removed
            live = [
                node_id
                for node_id in self._ids[: self._n_base]
                if node_id not in removed
            ]
            live.extend(self._ov_added)
            return live
        return list(self._coordinates)

    def nearest_to_node(self, node_id: str, k: int = 1) -> List[Tuple[str, float]]:
        self._ensure_built()
        coordinate = self.coordinate_of(node_id)
        if coordinate is None:
            raise KeyError(f"{node_id!r} is not in the index")
        return self.nearest(coordinate, k, exclude=[node_id])

    # -- distance kernels ----------------------------------------------
    def _check_dimensions(self, target: Coordinate) -> None:
        if self._components.shape[0] and target.dimensions != self._components.shape[1]:
            raise ValueError(
                "coordinate dimensionality mismatch: "
                f"{self._components.shape[1]} vs {target.dimensions}"
            )

    def _distances_to(self, target: Coordinate) -> np.ndarray:
        """Predicted RTT from ``target`` to every row, oracle-exact.

        Same operation order as ``Coordinate.distance``: a left-to-right
        accumulation of squared component differences, then
        ``(sqrt + target.height) + row height``.
        """
        self._check_dimensions(target)
        return (self._euclidean_to(target) + target.height) + self._heights

    def _cost_to(self, endpoint: Coordinate) -> np.ndarray:
        """Predicted RTT from every row *to* ``endpoint``.

        Same floats as ``row.distance(endpoint)`` -- the 1-median oracle
        adds the row height before the endpoint height, the mirror image
        of :meth:`_distances_to`, and float addition is not associative.
        """
        self._check_dimensions(endpoint)
        return (self._euclidean_to(endpoint) + self._heights) + endpoint.height

    def _euclidean_to(self, target: Coordinate) -> np.ndarray:
        delta = self._components - np.asarray(target.components, dtype=np.float64)
        acc = delta[:, 0] * delta[:, 0]
        for j in range(1, delta.shape[1]):
            acc = acc + delta[:, j] * delta[:, j]
        return np.sqrt(acc)

    def _overlay_euclidean_to(self, target: Coordinate) -> np.ndarray:
        """Oracle-exact Euclidean distances over the overlay rows."""
        delta = self._ov_components - np.asarray(target.components, dtype=np.float64)
        acc = delta[:, 0] * delta[:, 0]
        for j in range(1, delta.shape[1]):
            acc = acc + delta[:, j] * delta[:, j]
        return np.sqrt(acc)

    def _query_distances(self, target: Coordinate) -> np.ndarray:
        """Predicted RTTs over all combined rows; stale rows forced to +inf."""
        distances = self._distances_to(target)
        if not self._overlay_active:
            return distances
        if self._masked_rows.size:
            distances[self._masked_rows] = np.inf
        if self._ov_ids:
            overlay = (
                self._overlay_euclidean_to(target) + target.height
            ) + self._ov_heights
            distances = np.concatenate([distances, overlay])
        return distances

    def _query_costs(self, endpoint: Coordinate) -> np.ndarray:
        """Predicted RTTs row->endpoint over all combined rows (no masking)."""
        cost = self._cost_to(endpoint)
        if self._overlay_active and self._ov_ids:
            overlay = (
                self._overlay_euclidean_to(endpoint) + self._ov_heights
            ) + endpoint.height
            cost = np.concatenate([cost, overlay])
        return cost

    def _top_k(self, distances: np.ndarray, k: int) -> List[Tuple[str, float]]:
        """Best-k rows by ``(distance, insertion seq)``; +inf rows excluded."""
        n = distances.shape[0]
        if k < n:
            head = np.argpartition(distances, k - 1)[:k]
            tau = distances[head].max()
            candidates = np.nonzero(distances <= tau)[0]
        else:
            candidates = np.arange(n)
        candidates = candidates[distances[candidates] < np.inf]
        order = np.lexsort((self._row_seq[candidates], distances[candidates]))
        return [
            (self._ids[int(row)], float(distances[row]))
            for row in candidates[order[:k]]
        ]

    # -- queries -------------------------------------------------------
    def nearest(
        self,
        target: Coordinate,
        k: int = 1,
        *,
        exclude: Iterable[str] = (),
    ) -> List[Tuple[str, float]]:
        if k < 1:
            raise ValueError("k must be >= 1")
        self._ensure_built()
        if not self._ids:
            return []
        distances = self._query_distances(target)
        excluded_rows = [
            row
            for row in (self._row_index.get(node_id) for node_id in exclude)
            if row is not None
        ]
        if excluded_rows:
            distances[excluded_rows] = np.inf
        return self._top_k(distances, k)

    def within(self, target: Coordinate, radius_ms: float) -> List[Tuple[str, float]]:
        if radius_ms < 0.0:
            raise ValueError("radius_ms must be non-negative")
        self._ensure_built()
        if not self._ids:
            return []
        distances = self._query_distances(target)
        hits = np.nonzero(distances <= radius_ms)[0]
        order = np.lexsort((self._row_seq[hits], distances[hits]))
        return [(self._ids[int(row)], float(distances[row])) for row in hits[order]]

    def min_cost_host(self, endpoints: Sequence[Coordinate]) -> Tuple[str, float]:
        if not endpoints:
            raise ValueError("min_cost_host needs at least one endpoint")
        self._ensure_built()
        if not self._ids or len(self) == 0:
            raise ValueError("cannot run min_cost_host on an empty index")
        cost = self._query_costs(endpoints[0])
        for endpoint in endpoints[1:]:
            cost = cost + self._query_costs(endpoint)
        if self._masked_rows.size:
            cost[self._masked_rows] = np.inf
        best = cost.min()
        ties = np.nonzero(cost == best)[0]
        row = int(ties[np.argmin(self._row_seq[ties])])
        return self._ids[row], float(best)

    # -- batch entry points (the planner's one-NumPy-call path) --------
    #
    # The batched kernels run in two stages.  Stage one PRUNES in a
    # *shifted squared* space: ``g(x) = |x|^2 - 2 t.x`` (the norms
    # identity minus the per-row constant ``|t|^2``) comes out of one
    # float32 sgemm against a cached augmented matrix ``[X^T; |x|^2]``,
    # and a deterministic column sample estimates a per-row threshold
    # that keeps roughly ``4 * (k + pad)`` candidates -- no per-row
    # argpartition over all n columns.  Stage two RESCORES only the
    # surviving candidates with the exact float64 expression of
    # :meth:`_distances_to`, so every emitted float is bit-identical to
    # the single-query (and linear oracle) answer.
    #
    # Exactness of the *selection* is certified per row, not assumed:
    # with ``err2`` a conservative bound on the float32 error of g, an
    # excluded row provably has Euclidean distance above
    # ``cut = sqrt(tau + |t|^2 - err2)`` -- and heights only add on top.
    # A row's batch answer is only kept when ``cut`` strictly exceeds its
    # k-th exact candidate distance; otherwise (too few candidates, tie
    # within the error bound, height-dominated neighborhoods) that row
    # falls back to an exact full scan.  Range queries need no fallback:
    # the threshold over-approximates and the exact rescore filters.

    #: Candidate padding beyond k for the pruning stage.
    _PRUNE_PAD = 32
    #: float32 machine epsilon with a generous safety factor for the
    #: handful of roundings in the norms identity (input rounding, the
    #: dot product, the sum, the cancellation-exposed subtraction).
    _PRUNE_EPS = 64.0 * 1.1920929e-07
    #: Columns sampled (deterministic stride) for the threshold estimate.
    _PRUNE_SAMPLE = 1024

    def _pruning_cache(self):
        """Cached float32 ``[X^T; |x|^2]`` augmented matrix and norms."""
        if self._prune is None:
            components32 = self._components.astype(np.float32)
            norms32 = (components32 * components32).sum(axis=1)
            augmented = np.vstack([components32.T, norms32[None, :]])
            norms64 = (self._components * self._components).sum(axis=1)
            self._prune = (
                components32,
                augmented,
                norms64,
                float(norms32.max()) if norms32.size else 0.0,
            )
        return self._prune

    def _shifted_squared(
        self, rows: np.ndarray, out: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """``g = |x|^2 - 2 t.x`` per (row, column), plus ``|t|^2`` and err2.

        ``|g - g_true| <= err2`` for every entry: each term of the norms
        identity is bounded by ``m2`` and the whole evaluation takes a
        handful of float32 roundings, covered by the safety factor in
        ``_PRUNE_EPS``.  ``out`` (a ``(>= q, n)`` float32 scratch buffer)
        lets chunked callers reuse one allocation.
        """
        components32, augmented, norms64, norm_max = self._pruning_cache()
        q = rows.shape[0]
        d = components32.shape[1]
        lhs = np.empty((q, d + 1), dtype=np.float32)
        np.multiply(components32[rows], np.float32(-2.0), out=lhs[:, :d])
        lhs[:, d] = 1.0
        if out is not None:
            shifted = np.matmul(lhs, augmented, out=out[:q])
        else:
            shifted = lhs @ augmented
        target_norms = norms64[rows]
        m2 = 2.0 * (float(target_norms.max()) if target_norms.size else 0.0) + 2.0 * norm_max
        err2 = self._PRUNE_EPS * max(m2, 1.0)
        return shifted, target_norms, err2

    def _exact_candidate_distances(
        self, rows: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        """Exact predicted RTTs row->candidate, same floats as the oracle."""
        comps = self._components
        delta = comps[candidates] - comps[rows][:, None, :]
        acc = delta[..., 0] * delta[..., 0]
        for j in range(1, comps.shape[1]):
            acc = acc + delta[..., j] * delta[..., j]
        return (np.sqrt(acc) + self._heights[rows][:, None]) + self._heights[candidates]

    def _exact_row_distances(self, row: int) -> np.ndarray:
        """Exact predicted RTTs from one row to every row (fallback path)."""
        comps = self._components
        delta = comps - comps[row]
        acc = delta[:, 0] * delta[:, 0]
        for j in range(1, comps.shape[1]):
            acc = acc + delta[:, j] * delta[:, j]
        return (np.sqrt(acc) + self._heights[row]) + self._heights

    def _resolve_rows(self, target_ids: Sequence[str]) -> List[Tuple[int, int]]:
        return [
            (position, row)
            for position, row in (
                (position, self._row_index.get(node_id))
                for position, node_id in enumerate(target_ids)
            )
            if row is not None
        ]

    def knn_batch_by_id(
        self, target_ids: Sequence[str], k: int
    ) -> List[Optional[List[Tuple[str, float]]]]:
        """k-nearest for many indexed targets, self-excluded, in one sweep.

        Element ``i`` answers ``target_ids[i]``; ``None`` marks an unknown
        target (the caller decides how to fail it).  Answers are identical
        -- floats, ordering, ties -- to ``nearest(coord, k, exclude=[id])``
        per target.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        self._ensure_built()
        results: List[Optional[List[Tuple[str, float]]]] = [None] * len(target_ids)
        if not self._ids:
            return results
        if self._overlay_active:
            # Overlay generations answer per target through the exact
            # single-query path (contract-identical); the pruned batch
            # kernel returns after the next compaction.
            for position, node_id in enumerate(target_ids):
                coordinate = self.coordinate_of(node_id)
                if coordinate is not None:
                    results[position] = self.nearest(coordinate, k, exclude=[node_id])
            return results
        known = self._resolve_rows(target_ids)
        n = len(self._ids)
        target_count = max(2 * (k + self._PRUNE_PAD), 96)
        if target_count * 2 >= n:
            # Too small for pruning to exclude much: exact scans.
            for position, row in known:
                distances = self._exact_row_distances(row)
                distances[row] = np.inf
                results[position] = self._top_k(distances, k)
            return results
        row_ids = self._row_seq
        sample_cols = np.arange(0, n, max(1, n // self._PRUNE_SAMPLE), dtype=np.int64)
        rank = min(
            sample_cols.size - 1,
            max(1, (target_count * sample_cols.size) // n),
        )
        scratch = np.empty((min(_BATCH_CHUNK, len(known)), n), dtype=np.float32)
        for offset in range(0, len(known), _BATCH_CHUNK):
            chunk = known[offset : offset + _BATCH_CHUNK]
            rows = np.asarray([row for _, row in chunk], dtype=np.int64)
            q = rows.shape[0]
            shifted, target_norms, err2 = self._shifted_squared(rows, out=scratch)
            shifted[np.arange(q), rows] = np.inf  # self-exclusion
            # Per-row candidate threshold from a strided column sample:
            # the rank is chosen so roughly target_count columns survive.
            tau = np.partition(shifted[:, sample_cols], rank, axis=1)[:, rank]
            # flatnonzero + divmod is an order of magnitude faster than
            # 2-D nonzero on a sparse (q, n) mask.
            flat = np.flatnonzero((shifted <= tau[:, None]).ravel())
            local_rows, cols = np.divmod(flat, n)
            exact = (
                self._exact_candidate_distances(rows[local_rows], cols[:, None]).ravel()
                if cols.size
                else np.empty(0)
            )
            order = np.lexsort((row_ids[cols], exact, local_rows))
            local_rows = local_rows[order]
            cols = cols[order]
            exact = exact[order]
            boundaries = np.searchsorted(local_rows, np.arange(q + 1))
            # An excluded column's Euclidean distance provably exceeds
            # cut = sqrt(tau + |t|^2 - err2); heights only add to it.
            cut = np.sqrt(
                np.maximum(tau.astype(np.float64) + target_norms - err2, 0.0)
            )
            for local, (position, row) in enumerate(chunk):
                begin, end = boundaries[local], boundaries[local + 1]
                count = end - begin
                certified = (
                    count >= k and cut[local] > exact[begin + k - 1]
                )
                if certified:
                    results[position] = [
                        (self._ids[int(node_row)], float(distance))
                        for node_row, distance in zip(
                            cols[begin : begin + k], exact[begin : begin + k]
                        )
                    ]
                else:
                    distances = self._exact_row_distances(row)
                    distances[row] = np.inf
                    results[position] = self._top_k(distances, k)
        return results

    def range_batch_by_id(
        self, target_ids: Sequence[str], radius_ms: float
    ) -> List[Optional[List[Tuple[str, float]]]]:
        """Range query for many indexed targets in one sweep.

        Answers match ``within(coord, radius_ms)`` per target exactly;
        note the planner (not the index) drops the target itself from
        range payloads, mirroring the single-query code path.
        """
        if radius_ms < 0.0:
            raise ValueError("radius_ms must be non-negative")
        self._ensure_built()
        results: List[Optional[List[Tuple[str, float]]]] = [None] * len(target_ids)
        if not self._ids:
            return results
        if self._overlay_active:
            for position, node_id in enumerate(target_ids):
                coordinate = self.coordinate_of(node_id)
                if coordinate is not None:
                    results[position] = self.within(coordinate, radius_ms)
            return results
        known = self._resolve_rows(target_ids)
        row_ids = self._row_seq
        for offset in range(0, len(known), _BATCH_CHUNK):
            chunk = known[offset : offset + _BATCH_CHUNK]
            rows = np.asarray([row for _, row in chunk], dtype=np.int64)
            shifted, target_norms, err2 = self._shifted_squared(rows)
            # Every true hit has euclid <= dist <= radius, hence
            # g <= radius^2 - |t|^2 + err2; the exact rescore below
            # discards the over-approximation, so no fallback is needed.
            tau = (radius_ms * radius_ms - target_norms) + err2
            # Rounded *up* to float32 so the comparison stays in float32
            # (no (q, n) float64 temporary) without ever tightening the
            # over-approximation.
            tau32 = np.nextafter(
                tau.astype(np.float32), np.float32(np.inf)
            )
            flat = np.flatnonzero((shifted <= tau32[:, None]).ravel())
            local_rows, cols = np.divmod(flat, shifted.shape[1])
            exact = (
                self._exact_candidate_distances(
                    rows[local_rows], cols[:, None]
                ).ravel()
                if cols.size
                else np.empty(0)
            )
            keep = exact <= radius_ms
            local_rows, cols, exact = local_rows[keep], cols[keep], exact[keep]
            order = np.lexsort((row_ids[cols], exact, local_rows))
            local_rows, cols, exact = (
                local_rows[order],
                cols[order],
                exact[order],
            )
            boundaries = np.searchsorted(local_rows, np.arange(rows.shape[0] + 1))
            for local, (position, _) in enumerate(chunk):
                begin, end = boundaries[local], boundaries[local + 1]
                results[position] = [
                    (self._ids[int(node_row)], float(distance))
                    for node_row, distance in zip(cols[begin:end], exact[begin:end])
                ]
        return results
