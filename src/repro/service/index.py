"""Sub-linear spatial indexes behind the :class:`CoordinateIndex` contract.

The linear scan in :mod:`repro.overlay.knn` is the correctness oracle; the
implementations here answer the same queries -- k-nearest, range, and the
placement 1-median -- without touching every node:

* :class:`VPTreeIndex` -- a vantage-point tree over the predicted-latency
  metric itself.  The coordinate distance ``||x_i - x_j|| + h_i + h_j``
  satisfies the triangle inequality even with Vivaldi height terms, which
  is all the vp-tree's pruning bounds require.  Queries inspect
  ``O(log n)``-ish nodes on the paper's low-dimensional embeddings.
* :class:`GridIndex` -- a uniform grid over the Euclidean components with
  per-cell minimum-height bounds, searched in expanding shells.  Cheaper
  to rebuild than the tree; best for dense, frequently refreshed
  snapshots.

Exactness contract: every query returns *identical* results to the linear
oracle -- same node sets, same predicted RTTs (the exact same
``Coordinate.distance`` floats), same ordering.  Ties are broken by
insertion order, matching the oracle's stable sort over its
insertion-ordered dict; the traversals below therefore track a per-node
insertion sequence number and never prune on bound *equality*, only on
strict excess.

Rebuilds are lazy: mutations mark the structure dirty and the next query
rebuilds it, so bulk ``update_many`` loads cost one build, not n.
"""

from __future__ import annotations

import itertools
import math
from heapq import heappush, heapreplace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.coordinate import Coordinate
from repro.overlay.knn import CoordinateIndex

__all__ = ["INDEX_KINDS", "build_index", "VPTreeIndex", "GridIndex"]

#: Registered index kinds, resolvable through :func:`build_index`.
INDEX_KINDS = ("linear", "vptree", "grid")

#: Entries per vp-tree leaf bucket / target entries per grid cell.
_LEAF_SIZE = 12


def _loosen(bound: float) -> float:
    """Make a pruning lower bound safe against floating-point rounding.

    Bounds like ``d_v - radius`` are exact in real arithmetic but are
    computed from rounded distances, so they can land a few ulps *above*
    the true distance of a node they are meant to bound -- which would
    prune a node sitting exactly at the k-th-best distance or range
    radius and break the oracle-identity contract on tie-heavy (e.g.
    lattice) inputs.  Loosening by an epsilon that dwarfs accumulated
    rounding error (<= ~1e-15 relative) while staying far below any
    meaningful latency difference means we only ever explore slightly
    more, never less; results stay exact because candidates are always
    scored with the exact ``Coordinate.distance`` floats.
    """
    return bound - 1e-9 * (1.0 + abs(bound))


def build_index(kind: str = "vptree") -> CoordinateIndex:
    """Construct an empty index of the requested kind."""
    if kind == "linear":
        return CoordinateIndex()
    if kind == "vptree":
        return VPTreeIndex()
    if kind == "grid":
        return GridIndex()
    raise ValueError(f"unknown index kind {kind!r}; known: {list(INDEX_KINDS)}")


class _SpatialIndex(CoordinateIndex):
    """Shared bookkeeping: insertion sequence numbers and lazy rebuilds."""

    def __init__(self) -> None:
        super().__init__()
        self._seq: Dict[str, int] = {}
        self._next_seq = 0
        self._dirty = True

    # -- maintenance ---------------------------------------------------
    def update(self, node_id: str, coordinate: Coordinate) -> None:
        if node_id not in self._seq:
            self._seq[node_id] = self._next_seq
            self._next_seq += 1
        super().update(node_id, coordinate)
        self._dirty = True

    def remove(self, node_id: str) -> None:
        self._seq.pop(node_id, None)
        super().remove(node_id)
        self._dirty = True

    def _entries(self) -> List[Tuple[int, str, Coordinate]]:
        """(seq, node_id, coordinate), in insertion order."""
        return [
            (self._seq[node_id], node_id, coordinate)
            for node_id, coordinate in self._coordinates.items()
        ]

    def _ensure_built(self) -> None:
        if self._dirty:
            self._rebuild()
            self._dirty = False

    def _rebuild(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class _KBest:
    """A bounded best-k collector ordered by (distance, insertion seq)."""

    __slots__ = ("k", "_heap")

    def __init__(self, k: int) -> None:
        self.k = k
        # Max-heap via negated keys: worst surviving candidate on top.
        self._heap: List[Tuple[float, int, str]] = []

    @property
    def threshold(self) -> float:
        """Current k-th best distance (inf until k candidates are held)."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def offer(self, distance: float, seq: int, node_id: str) -> None:
        if len(self._heap) < self.k:
            heappush(self._heap, (-distance, -seq, node_id))
            return
        worst_distance, worst_seq = -self._heap[0][0], -self._heap[0][1]
        if distance < worst_distance or (distance == worst_distance and seq < worst_seq):
            heapreplace(self._heap, (-distance, -seq, node_id))

    def sorted_results(self) -> List[Tuple[str, float]]:
        ranked = sorted((-d, -seq, node_id) for d, seq, node_id in self._heap)
        return [(node_id, distance) for distance, _, node_id in ranked]


# ----------------------------------------------------------------------
# Vantage-point tree
# ----------------------------------------------------------------------
class _VPNode:
    __slots__ = ("seq", "node_id", "coordinate", "mu", "radius", "children", "bucket")

    def __init__(self) -> None:
        self.seq = 0
        self.node_id = ""
        self.coordinate: Optional[Coordinate] = None
        self.mu = 0.0
        #: Max distance from the vantage to any point in this subtree.
        self.radius = 0.0
        self.children: List[Optional["_VPNode"]] = [None, None]
        self.bucket: Optional[List[Tuple[int, str, Coordinate]]] = None


class VPTreeIndex(_SpatialIndex):
    """Vantage-point tree over the predicted-latency metric.

    The vantage of every subtree is its earliest-inserted entry, so the
    structure -- and therefore traversal order and results -- is a pure
    function of the index contents.
    """

    def __init__(self) -> None:
        super().__init__()
        self._root: Optional[_VPNode] = None

    def _rebuild(self) -> None:
        entries = self._entries()
        if not entries:
            self._root = None
            return
        root_holder: List[Optional[_VPNode]] = [None, None]
        stack: List[Tuple[List[Tuple[int, str, Coordinate]], List[Optional[_VPNode]], int]] = [
            (entries, root_holder, 0)
        ]
        while stack:
            group, holder, slot = stack.pop()
            node = _VPNode()
            holder[slot] = node
            if len(group) <= _LEAF_SIZE:
                node.bucket = group
                continue
            seq, node_id, vantage = group[0]
            rest = group[1:]
            distances = [vantage.distance(coordinate) for _, _, coordinate in rest]
            ranked = sorted(distances)
            mu = ranked[(len(ranked) - 1) // 2]
            near = [entry for entry, d in zip(rest, distances) if d <= mu]
            far = [entry for entry, d in zip(rest, distances) if d > mu]
            if not far:
                # No split progress (duplicate-heavy group): finish as a
                # leaf instead of chaining one vantage per level.
                node.bucket = group
                continue
            node.seq, node.node_id, node.coordinate = seq, node_id, vantage
            node.mu = mu
            node.radius = ranked[-1]
            stack.append((near, node.children, 0))
            stack.append((far, node.children, 1))
        self._root = root_holder[0]

    # -- queries -------------------------------------------------------
    def nearest(
        self,
        target: Coordinate,
        k: int = 1,
        *,
        exclude: Iterable[str] = (),
    ) -> List[Tuple[str, float]]:
        if k < 1:
            raise ValueError("k must be >= 1")
        self._ensure_built()
        if self._root is None:
            return []
        excluded = set(exclude)
        best = _KBest(k)

        def offer(distance: float, seq: int, node_id: str) -> None:
            if node_id not in excluded:
                best.offer(distance, seq, node_id)

        stack: List[Tuple[_VPNode, float]] = [(self._root, 0.0)]
        while stack:
            node, bound = stack.pop()
            if bound > best.threshold:
                continue
            if node.bucket is not None:
                for seq, node_id, coordinate in node.bucket:
                    offer(target.distance(coordinate), seq, node_id)
                continue
            assert node.coordinate is not None
            d_v = target.distance(node.coordinate)
            offer(d_v, node.seq, node.node_id)
            near_bound = _loosen(max(0.0, d_v - node.mu))
            far_bound = _loosen(max(0.0, node.mu - d_v, d_v - node.radius))
            near, far = node.children
            # Push the more promising side last so it is explored first
            # and tightens the threshold early.
            order = ((far, far_bound), (near, near_bound))
            if d_v > node.mu:
                order = ((near, near_bound), (far, far_bound))
            for child, child_bound in order:
                if child is not None and child_bound <= best.threshold:
                    stack.append((child, child_bound))
        return best.sorted_results()

    def within(self, target: Coordinate, radius_ms: float) -> List[Tuple[str, float]]:
        if radius_ms < 0.0:
            raise ValueError("radius_ms must be non-negative")
        self._ensure_built()
        if self._root is None:
            return []
        hits: List[Tuple[float, int, str]] = []
        stack: List[_VPNode] = [self._root]
        while stack:
            node = stack.pop()
            if node.bucket is not None:
                for seq, node_id, coordinate in node.bucket:
                    distance = target.distance(coordinate)
                    if distance <= radius_ms:
                        hits.append((distance, seq, node_id))
                continue
            assert node.coordinate is not None
            d_v = target.distance(node.coordinate)
            if d_v <= radius_ms:
                hits.append((d_v, node.seq, node.node_id))
            near, far = node.children
            if near is not None and _loosen(max(0.0, d_v - node.mu)) <= radius_ms:
                stack.append(near)
            if far is not None and _loosen(
                max(0.0, node.mu - d_v, d_v - node.radius)
            ) <= radius_ms:
                stack.append(far)
        hits.sort()
        return [(node_id, distance) for distance, _, node_id in hits]

    def min_cost_host(self, endpoints: Sequence[Coordinate]) -> Tuple[str, float]:
        if not endpoints:
            raise ValueError("min_cost_host needs at least one endpoint")
        self._ensure_built()
        if self._root is None:
            raise ValueError("cannot run min_cost_host on an empty index")
        best_cost = float("inf")
        best_seq = -1
        best_host: Optional[str] = None

        def offer(cost: float, seq: int, node_id: str) -> None:
            nonlocal best_cost, best_seq, best_host
            if cost < best_cost or (cost == best_cost and seq < best_seq):
                best_cost, best_seq, best_host = cost, seq, node_id

        stack: List[Tuple[_VPNode, float]] = [(self._root, 0.0)]
        while stack:
            node, bound = stack.pop()
            if bound > best_cost:
                continue
            if node.bucket is not None:
                for seq, node_id, coordinate in node.bucket:
                    offer(
                        sum(coordinate.distance(endpoint) for endpoint in endpoints),
                        seq,
                        node_id,
                    )
                continue
            assert node.coordinate is not None
            per_endpoint = [node.coordinate.distance(endpoint) for endpoint in endpoints]
            offer(sum(per_endpoint), node.seq, node.node_id)
            near, far = node.children
            if near is not None:
                near_bound = _loosen(sum(max(0.0, d - node.mu) for d in per_endpoint))
                if near_bound <= best_cost:
                    stack.append((near, near_bound))
            if far is not None:
                far_bound = _loosen(
                    sum(max(0.0, node.mu - d, d - node.radius) for d in per_endpoint)
                )
                if far_bound <= best_cost:
                    stack.append((far, far_bound))
        assert best_host is not None
        return best_host, best_cost


# ----------------------------------------------------------------------
# Uniform grid
# ----------------------------------------------------------------------
class GridIndex(_SpatialIndex):
    """Uniform grid over the Euclidean components, searched shell by shell.

    Cell size targets ``n ** (1/d)`` cells per dimension over the bounding
    box.  Candidate cells are pruned with an exact axis-aligned-box lower
    bound plus the query height and the cell's minimum stored height, so
    results remain identical to the oracle even in height-augmented
    spaces.  The placement 1-median query falls back to the inherited
    linear scan -- use :class:`VPTreeIndex` to accelerate placement.
    """

    def __init__(self) -> None:
        super().__init__()
        self._cells: Dict[Tuple[int, ...], List[Tuple[int, str, Coordinate]]] = {}
        self._cell_min_height: Dict[Tuple[int, ...], float] = {}
        self._origin: Tuple[float, ...] = ()
        self._cell_size = 1.0
        self._dims = 0
        self._cells_per_dim = 1
        self._min_height = 0.0

    def _rebuild(self) -> None:
        self._cells.clear()
        self._cell_min_height.clear()
        entries = self._entries()
        if not entries:
            self._dims = 0
            return
        dims = entries[0][2].dimensions
        for _, node_id, coordinate in entries:
            if coordinate.dimensions != dims:
                raise ValueError(
                    f"GridIndex needs uniform dimensionality; {node_id!r} has "
                    f"{coordinate.dimensions}, expected {dims}"
                )
        lows = [min(c.components[i] for _, _, c in entries) for i in range(dims)]
        highs = [max(c.components[i] for _, _, c in entries) for i in range(dims)]
        extent = max(high - low for low, high in zip(lows, highs))
        cells_per_dim = max(1, math.ceil(len(entries) ** (1.0 / dims) / 2.0))
        self._dims = dims
        self._origin = tuple(lows)
        self._cell_size = (extent / cells_per_dim) if extent > 0.0 else 1.0
        self._cells_per_dim = cells_per_dim
        self._min_height = min(c.height for _, _, c in entries)
        for entry in entries:
            key = self._cell_key(entry[2].components)
            self._cells.setdefault(key, []).append(entry)
            held = self._cell_min_height.get(key)
            if held is None or entry[2].height < held:
                self._cell_min_height[key] = entry[2].height

    def _cell_key(self, components: Sequence[float]) -> Tuple[int, ...]:
        return tuple(
            int(math.floor((value - origin) / self._cell_size))
            for value, origin in zip(components, self._origin)
        )

    def _box_lower_bound(self, target: Coordinate, key: Tuple[int, ...]) -> float:
        """Exact lower bound on predicted RTT to any point stored in ``key``."""
        gap_sq = 0.0
        for axis, cell in enumerate(key):
            low = self._origin[axis] + cell * self._cell_size
            high = low + self._cell_size
            value = target.components[axis]
            if value < low:
                gap_sq += (low - value) ** 2
            elif value > high:
                gap_sq += (value - high) ** 2
        return _loosen(math.sqrt(gap_sq) + target.height + self._cell_min_height[key])

    def _shells(self, target: Coordinate):
        """Yield (shell_rank, cell_keys) rings around the target, nearest first."""
        center = tuple(
            min(max(index, 0), self._cells_per_dim - 1)
            for index in self._cell_key(target.components)
        )
        occupied = set(self._cells)
        remaining = len(occupied)
        shell = 0
        while remaining > 0:
            keys = []
            if shell == 0:
                candidates: Iterable[Tuple[int, ...]] = (center,)
            else:
                candidates = (
                    tuple(c + o for c, o in zip(center, offsets))
                    for offsets in itertools.product(
                        range(-shell, shell + 1), repeat=self._dims
                    )
                    if max(abs(o) for o in offsets) == shell
                )
            for key in candidates:
                if key in occupied:
                    keys.append(key)
            remaining -= len(keys)
            yield shell, keys
            shell += 1

    def _shell_lower_bound(self, target: Coordinate, shell: int) -> float:
        """Lower bound on predicted RTT to anything in shell ``shell`` or beyond."""
        return _loosen(
            max(0.0, (shell - 1) * self._cell_size) + target.height + self._min_height
        )

    def nearest(
        self,
        target: Coordinate,
        k: int = 1,
        *,
        exclude: Iterable[str] = (),
    ) -> List[Tuple[str, float]]:
        if k < 1:
            raise ValueError("k must be >= 1")
        self._ensure_built()
        if not self._cells:
            return []
        excluded = set(exclude)
        best = _KBest(k)
        for shell, keys in self._shells(target):
            if self._shell_lower_bound(target, shell) > best.threshold:
                break
            for key in keys:
                if self._box_lower_bound(target, key) > best.threshold:
                    continue
                for seq, node_id, coordinate in self._cells[key]:
                    if node_id in excluded:
                        continue
                    best.offer(target.distance(coordinate), seq, node_id)
        return best.sorted_results()

    def within(self, target: Coordinate, radius_ms: float) -> List[Tuple[str, float]]:
        if radius_ms < 0.0:
            raise ValueError("radius_ms must be non-negative")
        self._ensure_built()
        if not self._cells:
            return []
        hits: List[Tuple[float, int, str]] = []
        for shell, keys in self._shells(target):
            if self._shell_lower_bound(target, shell) > radius_ms:
                break
            for key in keys:
                if self._box_lower_bound(target, key) > radius_ms:
                    continue
                for seq, node_id, coordinate in self._cells[key]:
                    distance = target.distance(coordinate)
                    if distance <= radius_ms:
                        hits.append((distance, seq, node_id))
        hits.sort()
        return [(node_id, distance) for distance, _, node_id in hits]
