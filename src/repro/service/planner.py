"""Batched query planning over coordinate snapshots: the read path.

:class:`QueryPlanner` turns :class:`~repro.service.snapshot.SnapshotStore`
views into answers for the application-level questions the paper argues
coordinates make geometric:

* ``knn`` -- the k nodes nearest an indexed node (excluding itself);
* ``nearest`` -- the single nearest node to a node (``knn`` with k=1);
* ``range`` -- all nodes within a predicted-RTT radius of a node;
* ``pairwise`` -- the predicted RTT between two nodes;
* ``centroid`` -- the latency-optimal meeting point of a node group and
  the indexed node closest to it.

Queries are **batched**: :meth:`QueryPlanner.submit` stages work and
:meth:`QueryPlanner.flush` executes the whole batch against a *single*
pinned snapshot version, so one flush is internally consistent even while
ingest keeps committing new versions, and the per-version spatial index is
built once per generation rather than once per query.

When the pinned index is the ``dense`` kind, flush goes further: all
cache-missing knn / nearest / range queries in the batch are grouped (by
``k`` / radius) and answered through the index's batch entry points --
chunked ``(q, n)`` NumPy distance matrices instead of q separate scans --
with byte-identical payloads, cache writes and per-kind stats.  Everything
else in the batch (pairwise, centroid, unknown targets, duplicates served
from the cache, non-dense indexes) falls back to the per-query path.

Results are **cached** in an LRU+TTL map whose key includes the snapshot
version -- a cached answer can therefore never leak across coordinate
generations; entries from superseded versions simply age out, and their
capacity evictions are counted separately from live-version LRU evictions
(see :class:`LRUTTLCache`) so serving hit rates stay interpretable under
snapshot rollover.  Per-kind
**stats** (counts, cache hits, and service-latency percentiles via
:class:`~repro.stats.percentile.StreamingPercentile`, exact below its
capacity cutoff) make the serving layer observable.
"""

from __future__ import annotations

import copy
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.coordinate import centroid
from repro.obs.registry import TelemetryRegistry
from repro.service.snapshot import CoordinateSnapshot, SnapshotStore
from repro.stats.percentile import StreamingPercentile

__all__ = ["Query", "QueryError", "QueryResult", "QueryPlanner", "LRUTTLCache", "QUERY_KINDS"]

#: Recognised query kinds.
QUERY_KINDS = ("knn", "nearest", "range", "pairwise", "centroid")


class QueryError(ValueError):
    """A query referenced unknown nodes or carried invalid parameters."""


@dataclass(frozen=True, slots=True)
class Query:
    """One proximity question, hashable so it can key the result cache."""

    kind: str
    #: Subject node for knn / nearest / range.
    target: Optional[str] = None
    k: int = 1
    radius_ms: float = 0.0
    #: Node pair for pairwise latency.
    pair: Tuple[str, str] = ("", "")
    #: Node group for centroid queries (empty = all indexed nodes).
    members: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise QueryError(f"unknown query kind {self.kind!r}; known: {list(QUERY_KINDS)}")
        if self.kind in ("knn", "nearest", "range") and not self.target:
            raise QueryError(f"{self.kind} query needs a target node")
        if self.kind == "knn" and self.k < 1:
            raise QueryError("knn query needs k >= 1")
        if self.kind == "range" and self.radius_ms < 0.0:
            raise QueryError("range query needs a non-negative radius_ms")
        if self.kind == "pairwise" and (not self.pair[0] or not self.pair[1]):
            raise QueryError("pairwise query needs two node ids")

    # -- convenience constructors --------------------------------------
    @classmethod
    def knn(cls, target: str, k: int = 3) -> "Query":
        return cls(kind="knn", target=target, k=k)

    @classmethod
    def nearest(cls, target: str) -> "Query":
        return cls(kind="nearest", target=target, k=1)

    @classmethod
    def range(cls, target: str, radius_ms: float) -> "Query":
        return cls(kind="range", target=target, radius_ms=radius_ms)

    @classmethod
    def pairwise(cls, a: str, b: str) -> "Query":
        return cls(kind="pairwise", pair=(a, b))

    @classmethod
    def centroid(cls, members: Tuple[str, ...] = ()) -> "Query":
        return cls(kind="centroid", members=tuple(members))


@dataclass(frozen=True, slots=True)
class QueryResult:
    """The answer to one query, tagged with its provenance."""

    query: Query
    #: JSON-safe answer payload; shape depends on the query kind.  None
    #: when the query failed (see ``error``).
    payload: Any
    snapshot_version: int
    cached: bool
    #: The failure message for a query that could not be answered inside
    #: a batch (e.g. an unknown node); None on success.
    error: Optional[str] = None


class LRUTTLCache:
    """A bounded LRU cache whose entries also expire after ``ttl_s``.

    The clock is injected so deterministic consumers (the scenario
    workload, tests) can drive expiry logically instead of by wall time.

    Capacity evictions are classified: when the consumer keeps
    :attr:`current_version` up to date (the planner and the serving
    daemon pin it to the snapshot version they serve from), an entry
    evicted while keyed to a *superseded* version counts as a
    ``rollover`` eviction -- it was dead weight the moment the store
    published a newer snapshot -- while an entry keyed to the live
    version counts as a plain ``lru`` eviction (genuine capacity
    pressure).  TTL expiry stays its own counter (``expirations``).
    Live-serving hit rates are only interpretable with this split: a
    low hit rate caused by rollover churn calls for faster clients or
    slower publishing, one caused by LRU pressure calls for a bigger
    cache.
    """

    __slots__ = (
        "max_entries",
        "ttl_s",
        "_clock",
        "_entries",
        "hits",
        "misses",
        "expirations",
        "current_version",
        "evictions_lru",
        "evictions_rollover",
    )

    def __init__(
        self,
        max_entries: int = 4096,
        ttl_s: float = float("inf"),
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if ttl_s <= 0.0:
            raise ValueError("ttl_s must be positive")
        self.max_entries = max_entries
        self.ttl_s = ttl_s
        self._clock = clock
        self._entries: "OrderedDict[Any, Tuple[float, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        #: The snapshot version currently being served; entries keyed to
        #: older versions evict as ``rollover`` rather than ``lru``.
        self.current_version: Optional[int] = None
        self.evictions_lru = 0
        self.evictions_rollover = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any) -> Tuple[bool, Any]:
        """(found, value); found is False for missing *and* expired keys."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return False, None
        stored_at, value = entry
        if self._clock() - stored_at > self.ttl_s:
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return False, None
        self._entries.move_to_end(key)
        self.hits += 1
        return True, value

    def put(self, key: Any, value: Any) -> None:
        self._entries[key] = (self._clock(), value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            evicted_key, _ = self._entries.popitem(last=False)
            self._classify_eviction(evicted_key)

    def _classify_eviction(self, key: Any) -> None:
        version = (
            key[0]
            if isinstance(key, tuple) and key and isinstance(key[0], int)
            else None
        )
        if (
            self.current_version is not None
            and version is not None
            and version < self.current_version
        ):
            self.evictions_rollover += 1
        else:
            self.evictions_lru += 1

    def clear(self) -> None:
        self._entries.clear()


class _KindStats:
    """Per-query-kind accounting backed by registry instruments.

    The counts live in telemetry counters (shared with the Prometheus
    rendering); the exact-percentile reservoir stays local because the
    ``p50_us``/``p99_us`` stats keys promise exactness below capacity,
    which a bucketed histogram cannot give -- the registry histogram
    records the same latencies for merging and tail analysis.
    """

    __slots__ = ("submitted", "executed", "cache_hits", "errors", "latency_us", "latency_ms")

    def __init__(self, kind: str, registry: TelemetryRegistry) -> None:
        self.submitted = registry.counter(
            "planner_submitted_total", "Queries staged or executed.", kind=kind
        )
        self.executed = registry.counter(
            "planner_executed_total", "Queries answered by the index.", kind=kind
        )
        self.cache_hits = registry.counter(
            "planner_cache_hits_total", "Result-cache hits.", kind=kind
        )
        self.errors = registry.counter(
            "planner_errors_total", "Queries that raised QueryError.", kind=kind
        )
        self.latency_us = StreamingPercentile(capacity=8192)
        self.latency_ms = registry.histogram(
            "planner_serve_latency_ms", "Uncached planner serve latency.", kind=kind
        )

    def record_latency(self, elapsed_us: float) -> None:
        self.latency_us.add(elapsed_us)
        self.latency_ms.observe(elapsed_us / 1e3)

    def as_dict(self) -> Dict[str, Any]:
        summary: Dict[str, Any] = {
            "submitted": self.submitted.value,
            "executed": self.executed.value,
            "cache_hits": self.cache_hits.value,
            "errors": self.errors.value,
        }
        if self.latency_us.count:
            summary["p50_us"] = self.latency_us.percentile(50.0)
            summary["p99_us"] = self.latency_us.percentile(99.0)
            summary["latency_exact"] = self.latency_us.is_exact
        return summary


class QueryPlanner:
    """Plans, batches, caches and accounts proximity queries."""

    def __init__(
        self,
        store: SnapshotStore,
        *,
        cache_entries: int = 4096,
        cache_ttl_s: float = float("inf"),
        clock: Callable[[], float] = time.monotonic,
        timer: Callable[[], float] = time.perf_counter,
        registry: Optional[TelemetryRegistry] = None,
    ) -> None:
        self.store = store
        self.cache = LRUTTLCache(cache_entries, cache_ttl_s, clock=clock)
        self._timer = timer
        self._pending: List[Query] = []
        self.registry = registry if registry is not None else TelemetryRegistry()
        self._stats: Dict[str, _KindStats] = {
            kind: _KindStats(kind, self.registry) for kind in QUERY_KINDS
        }
        self._c_batches = self.registry.counter(
            "planner_batches_flushed_total", "Non-empty batches flushed."
        )

    @property
    def batches_flushed(self) -> int:
        return self._c_batches.value

    # -- batching ------------------------------------------------------
    def submit(self, query: Query) -> None:
        """Stage a query for the next :meth:`flush`."""
        self._stats[query.kind].submitted.inc()
        self._pending.append(query)

    @property
    def pending_queries(self) -> int:
        return len(self._pending)

    def flush(self) -> List[QueryResult]:
        """Execute the staged batch against one pinned snapshot version.

        Results come back in submission order; the whole batch sees the
        same snapshot even if the store commits mid-flush.  A query that
        fails (e.g. an unknown node) yields an error-carrying result in
        its slot instead of poisoning the rest of the batch.

        On a ``dense`` index the knn / nearest / range portion of the
        batch executes through the index's batched NumPy entry points (see
        the module docstring); payloads, cache contents and stats match
        the per-query path exactly, with one documented difference: the
        batched answers' cache insertions happen before the fallback
        portion's, so with a cache smaller than the batch the *eviction*
        order within one flush can differ.
        """
        batch, self._pending = self._pending, []
        if not batch:
            return []
        self._c_batches.inc()
        with self.registry.span("planner.flush"):
            snapshot = self.store.latest()
            self.cache.current_version = snapshot.version
            index = self.store.index_for(snapshot)
            slots: List[Optional[QueryResult]] = [None] * len(batch)
            if len(batch) > 1 and hasattr(index, "knn_batch_by_id"):
                self._flush_batched(batch, snapshot, index, slots)
            results: List[QueryResult] = []
            for position, query in enumerate(batch):
                served = slots[position]
                if served is None:
                    try:
                        served = self._serve(query, snapshot, index)
                    except QueryError as exc:
                        served = QueryResult(
                            query, None, snapshot.version, cached=False, error=str(exc)
                        )
                results.append(served)
            return results

    def _flush_batched(self, batch, snapshot, index, slots) -> None:
        """Answer the batchable portion of ``batch`` in grouped NumPy calls.

        Fills ``slots`` in place; positions left as ``None`` (unbatchable
        kinds, unknown targets, in-batch duplicates awaiting the first
        occurrence's cache write) are served by the per-query fallback.
        Cache-hit accounting mirrors the sequential path: a first
        occurrence misses and executes, duplicates hit the cache.
        """
        knn_groups: Dict[int, List[int]] = {}
        range_groups: Dict[float, List[int]] = {}
        scheduled = set()
        for position, query in enumerate(batch):
            if query.kind in ("knn", "nearest"):
                group_key: Any = query.k if query.kind == "knn" else 1
                groups: Dict[Any, List[int]] = knn_groups
            elif query.kind == "range":
                group_key = query.radius_ms
                groups = range_groups
            else:
                continue
            if query.target not in index:
                continue  # let the per-query path raise the canonical error
            key = (snapshot.version, query)
            if key in scheduled:
                continue  # duplicate: hits the cache in the fallback pass
            stats = self._stats[query.kind]
            found, payload = self.cache.get(key)
            if found:
                stats.cache_hits.inc()
                slots[position] = QueryResult(
                    query, copy.deepcopy(payload), snapshot.version, cached=True
                )
                continue
            scheduled.add(key)
            groups.setdefault(group_key, []).append(position)

        for k, positions in knn_groups.items():
            with self.registry.span("planner.batch", shape="knn"):
                started = self._timer()
                answers = index.knn_batch_by_id(
                    [batch[position].target for position in positions], k
                )
                self._record_batch(
                    batch, snapshot, slots, positions, answers, started, "knn"
                )
        for radius_ms, positions in range_groups.items():
            with self.registry.span("planner.batch", shape="range"):
                started = self._timer()
                answers = index.range_batch_by_id(
                    [batch[position].target for position in positions], radius_ms
                )
                self._record_batch(
                    batch, snapshot, slots, positions, answers, started, "range"
                )

    def _record_batch(
        self, batch, snapshot, slots, positions, answers, started, shape
    ) -> None:
        """Turn one group's batched answers into payloads, cache and stats."""
        per_query_us = (self._timer() - started) * 1e6 / max(len(positions), 1)
        for position, answer in zip(positions, answers):
            if answer is None:  # unknown target: per-query path reports it
                continue
            query = batch[position]
            if shape == "knn":
                payload: Any = {
                    "target": query.target,
                    "neighbors": [
                        {"node_id": node_id, "predicted_rtt_ms": rtt}
                        for node_id, rtt in answer
                    ],
                }
            else:
                payload = {
                    "target": query.target,
                    "radius_ms": query.radius_ms,
                    "hits": [
                        {"node_id": node_id, "predicted_rtt_ms": rtt}
                        for node_id, rtt in answer
                        if node_id != query.target
                    ],
                }
            stats = self._stats[query.kind]
            stats.record_latency(per_query_us)
            stats.executed.inc()
            self.cache.put((snapshot.version, query), copy.deepcopy(payload))
            slots[position] = QueryResult(
                query, payload, snapshot.version, cached=False
            )

    def execute(self, query: Query) -> QueryResult:
        """Serve one query immediately against the latest snapshot.

        Unlike :meth:`flush`, a failing query raises :class:`QueryError`
        here -- the caller asked exactly one question.
        """
        self._stats[query.kind].submitted.inc()
        snapshot = self.store.latest()
        self.cache.current_version = snapshot.version
        return self._serve(query, snapshot, self.store.index_for(snapshot))

    def execute_batch(self, queries: List[Query]) -> List[QueryResult]:
        for query in queries:
            self.submit(query)
        return self.flush()

    # -- stats ---------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Per-kind counters plus cache-level totals (JSON-safe)."""
        per_kind = {
            kind: stats.as_dict()
            for kind, stats in self._stats.items()
            if stats.submitted.value or stats.executed.value
        }
        return {
            "kinds": per_kind,
            "batches_flushed": self.batches_flushed,
            "cache": {
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "expirations": self.cache.expirations,
                "evictions_lru": self.cache.evictions_lru,
                "evictions_rollover": self.cache.evictions_rollover,
            },
        }

    def cache_hit_rate(self) -> float:
        total = self.cache.hits + self.cache.misses
        return self.cache.hits / total if total else 0.0

    # -- execution ------------------------------------------------------
    def _serve(self, query: Query, snapshot: CoordinateSnapshot, index) -> QueryResult:
        stats = self._stats[query.kind]
        key = (snapshot.version, query)
        found, payload = self.cache.get(key)
        if found:
            stats.cache_hits.inc()
            # Deep-copied so a consumer mutating its result can never
            # corrupt the cached pristine answer.
            return QueryResult(query, copy.deepcopy(payload), snapshot.version, cached=True)
        started = self._timer()
        try:
            with self.registry.span("planner.serve", kind=query.kind):
                payload = self._answer(query, snapshot, index)
        except QueryError:
            stats.errors.inc()
            raise
        stats.record_latency((self._timer() - started) * 1e6)
        stats.executed.inc()
        self.cache.put(key, copy.deepcopy(payload))
        return QueryResult(query, payload, snapshot.version, cached=False)

    def _answer(self, query: Query, snapshot: CoordinateSnapshot, index) -> Any:
        kind = query.kind
        if kind in ("knn", "nearest"):
            coordinate = snapshot.coordinate_of(query.target)
            if coordinate is None:
                raise QueryError(f"unknown node {query.target!r}")
            k = query.k if kind == "knn" else 1
            neighbors = index.nearest(coordinate, k, exclude=[query.target])
            return {
                "target": query.target,
                "neighbors": [
                    {"node_id": node_id, "predicted_rtt_ms": rtt}
                    for node_id, rtt in neighbors
                ],
            }
        if kind == "range":
            coordinate = snapshot.coordinate_of(query.target)
            if coordinate is None:
                raise QueryError(f"unknown node {query.target!r}")
            hits = [
                {"node_id": node_id, "predicted_rtt_ms": rtt}
                for node_id, rtt in index.within(coordinate, query.radius_ms)
                if node_id != query.target
            ]
            return {"target": query.target, "radius_ms": query.radius_ms, "hits": hits}
        if kind == "pairwise":
            first, second = query.pair
            a = snapshot.coordinate_of(first)
            b = snapshot.coordinate_of(second)
            if a is None or b is None:
                missing = first if a is None else second
                raise QueryError(f"unknown node {missing!r}")
            return {"pair": [first, second], "predicted_rtt_ms": a.distance(b)}
        if kind == "centroid":
            members = query.members or tuple(snapshot.node_ids())
            coordinates = []
            for node_id in members:
                coordinate = snapshot.coordinate_of(node_id)
                if coordinate is None:
                    raise QueryError(f"unknown node {node_id!r}")
                coordinates.append(coordinate)
            if not coordinates:
                raise QueryError("centroid query over an empty snapshot")
            point = centroid(coordinates)
            nearest = index.nearest(point, 1)
            return {
                "members": len(members),
                "centroid": list(point.components),
                "nearest_host": nearest[0][0] if nearest else None,
                "nearest_rtt_ms": nearest[0][1] if nearest else None,
            }
        raise QueryError(f"unknown query kind {kind!r}")  # pragma: no cover
