"""Recovery-SLO assertions for chaos runs.

:func:`evaluate` turns the raw observations of one chaos run -- which
request positions errored, which latencies were measured, whether the
torn-read audit found anything, whether generations kept advancing --
into a pass/fail verdict per named check plus an overall ``passed``:

``bounded_error_window``
    Counted errors must not exceed ``max_error_window`` and every error
    position must fall inside a fault window extended by the recovery
    window.  With no fault windows at all the run must be error-free.
``no_torn_reads``
    The kill/restart torn-read audit (responses byte-compared against
    the generation they claim to come from) found zero mismatches.
``p99_recovery``
    For each serving-fault window, the p99 of ok-request latencies in
    the ``recovery_window_requests`` after the fault clears must be at
    most ``p99_amplification`` times the pre-fault p99.  Vacuous when a
    side has too few samples to rank a p99 (< 20), or when no latencies
    were recorded (deterministic scenario runs evaluate everything else
    and leave timing to the benchmark/CLI channel).
``generation_recovered``
    After publish-stall/drop faults, the store's generation version must
    have advanced past the version pinned when the fault fired (age
    re-converges).  ``None`` marks the check not applicable.

``python -m repro.chaos.slo report.json`` re-evaluates a CLI chaos
artifact from its recorded ``slo_inputs``, optionally overriding the
thresholds -- CI uses an absurd ``--p99-amplification`` to prove the
gate can fail.  Exit: 0 pass, 1 fail, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["SLOThresholds", "evaluate"]

#: Minimum per-side ok samples for a meaningful p99 comparison.
_MIN_P99_SAMPLES = 20


@dataclass(frozen=True)
class SLOThresholds:
    """Bounds a chaos run must satisfy to count as recovered."""

    p99_amplification: float = 1.5
    max_error_window: int = 64
    recovery_window_requests: int = 200
    require_no_torn_reads: bool = True

    def __post_init__(self) -> None:
        if self.p99_amplification <= 0.0:
            raise ValueError("p99_amplification must be > 0")
        if self.max_error_window < 0:
            raise ValueError("max_error_window must be >= 0")
        if self.recovery_window_requests < 1:
            raise ValueError("recovery_window_requests must be >= 1")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "p99_amplification": self.p99_amplification,
            "max_error_window": self.max_error_window,
            "recovery_window_requests": self.recovery_window_requests,
            "require_no_torn_reads": self.require_no_torn_reads,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SLOThresholds":
        known = {
            "p99_amplification",
            "max_error_window",
            "recovery_window_requests",
            "require_no_torn_reads",
        }
        return cls(**{k: v for k, v in payload.items() if k in known})


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sequence."""
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


def _check(passed: bool, detail: str) -> Dict[str, Any]:
    return {"passed": bool(passed), "detail": detail}


def evaluate(
    *,
    thresholds: SLOThresholds,
    fault_windows: Sequence[Tuple[int, int]],
    error_positions: Sequence[int],
    total_requests: int,
    latencies_ms: Optional[Sequence[Optional[float]]] = None,
    torn_reads: Optional[int] = None,
    generation_recovered: Optional[bool] = None,
) -> Dict[str, Any]:
    """Evaluate one chaos run's recovery SLOs.

    ``fault_windows`` are ``(start, end)`` request-count intervals of the
    serving faults (end exclusive).  ``error_positions`` are the 0-based
    request positions that failed (client- or server-side), counted --
    never silently dropped.  ``latencies_ms`` is position-indexed with
    ``None`` for failed requests; pass ``None`` entirely to skip timing
    (the deterministic scenario channel).  ``torn_reads`` is the audit's
    mismatch count or ``None`` if the audit did not run.
    """
    checks: Dict[str, Dict[str, Any]] = {}
    recovery = thresholds.recovery_window_requests

    # -- bounded, counted error window ---------------------------------
    errors = sorted(int(p) for p in error_positions)
    if not fault_windows:
        checks["bounded_error_window"] = _check(
            not errors, f"{len(errors)} error(s) with no fault scheduled"
        )
    else:
        allowed = [(start, end + recovery) for start, end in fault_windows]
        strays = [
            p for p in errors if not any(lo <= p < hi for lo, hi in allowed)
        ]
        count_ok = len(errors) <= thresholds.max_error_window
        checks["bounded_error_window"] = _check(
            count_ok and not strays,
            f"{len(errors)} error(s) (max {thresholds.max_error_window}), "
            f"{len(strays)} outside fault+recovery windows",
        )

    # -- torn reads ----------------------------------------------------
    if torn_reads is None:
        checks["no_torn_reads"] = _check(True, "not audited")
    else:
        passed = torn_reads == 0 or not thresholds.require_no_torn_reads
        checks["no_torn_reads"] = _check(passed, f"{torn_reads} torn read(s)")

    # -- p99 recovery per serving-fault window -------------------------
    if latencies_ms is None:
        checks["p99_recovery"] = _check(True, "not evaluated (no latencies)")
    elif not fault_windows:
        checks["p99_recovery"] = _check(True, "no fault windows")
    else:
        details: List[str] = []
        passed = True
        for start, end in fault_windows:
            pre = [
                latencies_ms[p]
                for p in range(0, min(start, len(latencies_ms)))
                if latencies_ms[p] is not None
            ]
            post = [
                latencies_ms[p]
                for p in range(end, min(end + recovery, total_requests, len(latencies_ms)))
                if latencies_ms[p] is not None
            ]
            if len(pre) < _MIN_P99_SAMPLES or len(post) < _MIN_P99_SAMPLES:
                details.append(
                    f"window [{start},{end}): vacuous "
                    f"({len(pre)} pre / {len(post)} post samples)"
                )
                continue
            pre_p99 = _percentile(pre, 0.99)
            post_p99 = _percentile(post, 0.99)
            bound = thresholds.p99_amplification * pre_p99
            ok = post_p99 <= bound
            passed = passed and ok
            details.append(
                f"window [{start},{end}): post p99 {post_p99:.3f}ms vs "
                f"bound {bound:.3f}ms (pre p99 {pre_p99:.3f}ms x "
                f"{thresholds.p99_amplification})"
            )
        checks["p99_recovery"] = _check(passed, "; ".join(details))

    # -- generation age re-converges -----------------------------------
    if generation_recovered is None:
        checks["generation_recovered"] = _check(True, "not applicable")
    else:
        checks["generation_recovered"] = _check(
            generation_recovered,
            "generation advanced past the fault"
            if generation_recovered
            else "generation did not advance after publish fault",
        )

    return {
        "passed": all(entry["passed"] for entry in checks.values()),
        "thresholds": thresholds.as_dict(),
        "checks": checks,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos.slo",
        description="Re-evaluate a chaos report artifact's recovery SLOs.",
    )
    parser.add_argument("artifact", type=Path, help="chaos report JSON (--chaos-out)")
    parser.add_argument("--p99-amplification", type=float, default=None)
    parser.add_argument("--max-error-window", type=int, default=None)
    parser.add_argument("--recovery-window", type=int, default=None)
    args = parser.parse_args(argv)

    try:
        payload = json.loads(args.artifact.read_text())
    except FileNotFoundError:
        print(f"error: artifact {args.artifact} not found", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: artifact {args.artifact} is not valid JSON: {exc}", file=sys.stderr)
        return 2
    inputs = payload.get("slo_inputs")
    if not isinstance(inputs, dict):
        print(
            f"error: artifact {args.artifact} has no slo_inputs section "
            "(was it written by repro load --chaos?)",
            file=sys.stderr,
        )
        return 2

    base = SLOThresholds.from_dict(payload.get("slo", {}).get("thresholds", {}))
    overrides = {}
    if args.p99_amplification is not None:
        overrides["p99_amplification"] = args.p99_amplification
    if args.max_error_window is not None:
        overrides["max_error_window"] = args.max_error_window
    if args.recovery_window is not None:
        overrides["recovery_window_requests"] = args.recovery_window
    try:
        thresholds = SLOThresholds.from_dict({**base.as_dict(), **overrides})
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    result = evaluate(
        thresholds=thresholds,
        fault_windows=[tuple(w) for w in inputs.get("fault_windows", [])],
        error_positions=inputs.get("error_positions", []),
        total_requests=int(inputs.get("total_requests", 0)),
        latencies_ms=inputs.get("latencies_ms"),
        torn_reads=inputs.get("torn_reads"),
        generation_recovered=inputs.get("generation_recovered"),
    )
    for name, entry in result["checks"].items():
        status = "PASS" if entry["passed"] else "FAIL"
        print(f"  {status}  {name}: {entry['detail']}")
    if result["passed"]:
        print("chaos SLO gate passed")
        return 0
    print("chaos SLO gate FAILED", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
