"""Count-driven fault injector wired between daemon, store, and schedule.

The :class:`ChaosInjector` owns the mutable fault state for one
:class:`~repro.chaos.schedule.FaultSchedule`.  The daemon calls
:meth:`on_query` once per admitted-or-sheddable query request and the
store calls :meth:`on_publish` at the top of every publish; both advance
the corresponding deterministic counter and fire/clear any fault whose
window that counter has entered or left.  No wall clock is consulted, so
two runs with the same schedule and workload produce identical fault
timing and an identical :meth:`report`.

Locking: the injector has its own lock and may call into the store's
shard kill/restart (which takes the store's ingest lock) while holding
it.  The reverse order never occurs because the store consults the
injector *before* acquiring the ingest lock (see
``ShardedCoordinateStore._chaos_publish_gate``), keeping the lock graph
acyclic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.chaos.schedule import FaultEvent, FaultSchedule

__all__ = ["ChaosInjector", "ServeDecision"]


@dataclass(frozen=True)
class ServeDecision:
    """What the daemon must do to its admission gauge for this request."""

    admission_acquire: int = 0
    admission_release: int = 0


class _FaultState:
    """Lifecycle bookkeeping for one scheduled fault."""

    __slots__ = ("event", "fired", "fired_at", "cleared", "cleared_at", "forced")

    def __init__(self, event: FaultEvent) -> None:
        self.event = event
        self.fired = False
        self.fired_at: Optional[int] = None
        self.cleared = False
        self.cleared_at: Optional[int] = None
        self.forced = False

    def as_dict(self) -> Dict[str, Any]:
        record = self.event.as_dict()
        record["fired"] = self.fired
        record["fired_at"] = self.fired_at
        record["cleared"] = self.cleared
        record["cleared_at"] = self.cleared_at
        record["forced_clear"] = self.forced
        return record


class ChaosInjector:
    """Fires and clears the schedule's faults against one sharded store."""

    def __init__(self, schedule: FaultSchedule, store) -> None:
        for event in schedule.events:
            if event.shard is not None and event.shard >= store.shards:
                raise ValueError(
                    f"fault {event.kind}@{event.at}: shard {event.shard} out of "
                    f"range for a {store.shards}-shard store"
                )
        self.schedule = schedule
        self._store = store
        self._lock = threading.Lock()
        self._serve_states = [_FaultState(e) for e in schedule.serve_events()]
        self._publish_states = [_FaultState(e) for e in schedule.publish_events()]
        self._requests = 0
        self._publishes = 0
        self._degraded = 0
        self._dropped = 0
        self._stalled = 0
        self._admission_injected = 0
        self._slow_delay_ms = 0.0

    # ------------------------------------------------------------------
    # serving path
    # ------------------------------------------------------------------

    def on_query(self, op: str) -> ServeDecision:
        """Advance the request counter; fire/clear any serve-window faults.

        Called by the daemon for every query-op request *before* admission
        so that shed requests still advance the schedule (otherwise an
        admission burst could never clear itself).
        """
        acquire = 0
        release = 0
        with self._lock:
            count = self._requests
            self._requests += 1
            # Clears before fires: a fault whose window ended exactly as
            # another begins must release its resources first.
            for state in self._serve_states:
                if state.fired and not state.cleared and count >= state.event.clear_at:
                    release += self._clear_locked(state, count)
            for state in self._serve_states:
                if (
                    not state.fired
                    and state.event.at <= count < state.event.clear_at
                ):
                    acquire += self._fire_locked(state, count)
        return ServeDecision(admission_acquire=acquire, admission_release=release)

    def serve_delay_ms(self) -> float:
        """Current injected per-query service delay (gray failure)."""
        return self._slow_delay_ms

    def note_degraded(self) -> None:
        """Record one partial (degraded) response served."""
        with self._lock:
            self._degraded += 1

    # ------------------------------------------------------------------
    # publish path
    # ------------------------------------------------------------------

    def on_publish(self) -> Tuple[str, float]:
        """Advance the publish counter; return ``(action, delay_ms)``.

        ``action`` is ``"drop"`` (publish must vanish), ``"stall"``
        (sleep ``delay_ms`` before installing), or ``"ok"``.  Drop takes
        precedence when both windows are open.
        """
        with self._lock:
            count = self._publishes
            self._publishes += 1
            for state in self._publish_states:
                if state.fired and not state.cleared and count >= state.event.clear_at:
                    self._clear_locked(state, count)
            action = "ok"
            delay_ms = 0.0
            for state in self._publish_states:
                if state.event.at <= count < state.event.clear_at:
                    if not state.fired:
                        self._fire_locked(state, count)
                    if state.event.kind == "publish-drop":
                        action = "drop"
                    elif state.event.kind == "publish-stall" and action != "drop":
                        action = "stall"
                        delay_ms = float(state.event.delay_ms or 0.0)
            if action == "drop":
                self._dropped += 1
                delay_ms = 0.0
            elif action == "stall":
                self._stalled += 1
            return action, delay_ms

    # ------------------------------------------------------------------
    # lifecycle internals (lock held)
    # ------------------------------------------------------------------

    def _fire_locked(self, state: _FaultState, count: int) -> int:
        """Apply one fault's effect; returns admission slots to acquire."""
        event = state.event
        state.fired = True
        state.fired_at = count
        acquire = 0
        if event.kind == "shard-kill":
            self._store.kill_shard(event.shard)
        elif event.kind == "shard-slow":
            self._slow_delay_ms += float(event.delay_ms or 0.0)
        elif event.kind == "admission-burst":
            acquire = int(event.amount or 0)
            self._admission_injected += acquire
        self._emit("fault_injected", event, at_count=count)
        return acquire

    def _clear_locked(self, state: _FaultState, count: Optional[int]) -> int:
        """Undo one fault's effect; returns admission slots to release."""
        event = state.event
        state.cleared = True
        state.cleared_at = count
        release = 0
        if event.kind == "shard-kill":
            self._store.restart_shard(event.shard)
        elif event.kind == "shard-slow":
            self._slow_delay_ms = max(
                0.0, self._slow_delay_ms - float(event.delay_ms or 0.0)
            )
        elif event.kind == "admission-burst":
            release = int(event.amount or 0)
        self._emit("fault_cleared", event, at_count=count, forced=state.forced)
        return release

    def _emit(self, kind: str, event: FaultEvent, **extra: Any) -> None:
        events = getattr(self._store, "events", None)
        if events is None:
            return
        fields: Dict[str, Any] = {"fault": event.kind, "scheduled_at": event.at}
        if event.shard is not None:
            fields["shard"] = event.shard
        if event.delay_ms is not None:
            fields["delay_ms"] = event.delay_ms
        if event.amount is not None:
            fields["amount"] = event.amount
        fields.update(extra)
        events.emit(kind, **fields)

    # ------------------------------------------------------------------
    # teardown and reporting
    # ------------------------------------------------------------------

    def finish_serve_faults(self) -> int:
        """Force-clear every still-active serve fault (end of chaos run).

        Restores killed shards, removes injected delay, and returns the
        total admission slots the caller must release from the daemon.
        Publish-window faults are left alone: they are harmless once no
        more publishes arrive, and clearing them would perturb the
        deterministic publish counter.
        """
        release = 0
        with self._lock:
            for state in self._serve_states:
                if state.fired and not state.cleared:
                    state.forced = True
                    release += self._clear_locked(state, None)
        return release

    def report(self) -> Dict[str, Any]:
        """Deterministic summary of what fired, cleared, and was counted."""
        with self._lock:
            return {
                "seed": self.schedule.seed,
                "spec": self.schedule.spec,
                "requests_seen": self._requests,
                "publishes_seen": self._publishes,
                "faults": [
                    state.as_dict()
                    for state in (*self._serve_states, *self._publish_states)
                ],
                "degraded_responses": self._degraded,
                "dropped_publishes": self._dropped,
                "stalled_publishes": self._stalled,
                "admission_injected": self._admission_injected,
            }
