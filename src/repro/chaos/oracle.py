"""Healthy-subset oracle checking for degraded (partial) responses.

A partial response served while shard S is down must be *exactly* the
full scatter-gather answer minus shard S's candidates -- nothing
re-ranked, no tie order disturbed.  :func:`verify_chaos_responses`
checks that: it mirrors the daemon's snapshot into an in-process
:class:`~repro.server.sharding.ShardedCoordinateStore` with the same
shard count (the blake2b shard assignment is stable across processes)
and re-answers every ok response with ``exclude_shards`` taken from the
response's own ``missing_shards`` list.  Full responses are therefore
checked against the full oracle and degraded ones against the healthy
subset, in one pass.

The mirror is built once from one snapshot, so the check assumes a
static population for the run (the ``repro load --chaos`` case: no
publisher is attached).  Runs with concurrent publishes are audited
in-process instead, where each response's generation can be pinned by
version (see :mod:`repro.server.live`).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Sequence

from repro.server.sharding import ShardedCoordinateStore
from repro.service.planner import Query, QueryError

__all__ = ["verify_chaos_responses"]


def verify_chaos_responses(
    snapshot,
    queries: Sequence[Query],
    responses: Sequence[Mapping[str, Any]],
    *,
    shards: int,
    index_kind: str = "linear",
) -> Dict[str, Any]:
    """Byte-compare ok responses against the (healthy-subset) oracle.

    Returns ``{"checked", "matches", "partial_checked", "partial_matches",
    "mismatches"}`` where ``mismatches`` lists the stream positions whose
    payload differed from the oracle's answer.
    """
    if len(queries) != len(responses):
        raise ValueError(
            f"{len(queries)} queries but {len(responses)} responses"
        )
    mirror = ShardedCoordinateStore.from_snapshot(
        snapshot, shards=shards, index_kind=index_kind
    )
    generation = mirror.generation()
    checked = matches = partial_checked = partial_matches = 0
    mismatches = []
    for position, (query, response) in enumerate(zip(queries, responses)):
        if not response.get("ok"):
            continue
        partial = bool(response.get("partial"))
        exclude = frozenset(int(s) for s in response.get("missing_shards") or ())
        try:
            expected = generation.answer(query, exclude_shards=exclude)
        except QueryError:
            mismatches.append(position)
            checked += 1
            if partial:
                partial_checked += 1
            continue
        checked += 1
        if partial:
            partial_checked += 1
        if expected == response.get("payload"):
            matches += 1
            if partial:
                partial_matches += 1
        else:
            mismatches.append(position)
    return {
        "checked": checked,
        "matches": matches,
        "partial_checked": partial_checked,
        "partial_matches": partial_matches,
        "mismatches": mismatches,
    }
