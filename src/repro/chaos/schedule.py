"""Deterministic fault schedules for the live serving path.

A :class:`FaultSchedule` is a seed-stamped, sorted tuple of
:class:`FaultEvent` records.  Nothing here reads the wall clock: serving
faults fire and clear on the daemon's *request count* and publish faults
on its *publish count*, so the same schedule replayed against the same
workload produces byte-identical fault timing, chaos reports, and event
logs -- the property the recovery-SLO gates in :mod:`repro.chaos.slo`
depend on.

Fault kinds
-----------

``shard-kill``
    The shard drops out of the scatter set at request ``at``; queries are
    served *degraded* (``"partial": true`` plus the missing-shard list)
    from the healthy subset.  After ``duration`` requests the store
    rebuilds the shard's index from the last generation's snapshot and
    re-admits it.  Requires ``shard``.
``shard-slow``
    Gray failure: every scatter query pays an extra ``delay_ms`` of
    service time while the fault is active.  Requires ``shard`` (the
    nominally slow shard, recorded for the report) and ``delay_ms``.
``publish-stall``
    The next publishes inside the window sleep ``delay_ms`` before
    installing, stretching generation age.  Requires ``delay_ms``;
    ``at``/``duration`` count *publishes*, not requests.
``publish-drop``
    Publishes inside the window vanish without installing a generation.
    ``at``/``duration`` count publishes.
``admission-burst``
    ``amount`` synthetic in-flight requests occupy the daemon's admission
    limit for the window, shedding real load.  Requires ``amount``.

Spec grammar
------------

``kind@at+duration[:key=value...]``, comma-separated::

    shard-kill@40+60:shard=1,publish-drop@4+1
    shard-slow@40+60:shard=0:delay_ms=2
    admission-burst@30+40:amount=4096

Parsing is strict: unknown kinds, missing or extraneous parameters, and
malformed numbers raise ``ValueError`` naming the offending token.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "FAULT_KINDS",
    "PUBLISH_FAULT_KINDS",
    "SERVE_FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
]

#: Every fault kind the injector understands.
FAULT_KINDS = (
    "shard-kill",
    "shard-slow",
    "publish-stall",
    "publish-drop",
    "admission-burst",
)

#: Kinds whose ``at``/``duration`` count serving requests.
SERVE_FAULT_KINDS = ("shard-kill", "shard-slow", "admission-burst")

#: Kinds whose ``at``/``duration`` count store publishes.
PUBLISH_FAULT_KINDS = ("publish-stall", "publish-drop")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fire at count ``at``, clear at ``at + duration``."""

    kind: str
    at: int
    duration: int
    shard: Optional[int] = None
    delay_ms: Optional[float] = None
    amount: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {list(FAULT_KINDS)}"
            )
        if self.at < 0:
            raise ValueError(f"{self.kind}: at must be >= 0, got {self.at}")
        if self.duration < 1:
            raise ValueError(
                f"{self.kind}: duration must be >= 1, got {self.duration}"
            )
        needs_shard = self.kind in ("shard-kill", "shard-slow")
        needs_delay = self.kind in ("shard-slow", "publish-stall")
        needs_amount = self.kind == "admission-burst"
        if needs_shard:
            if self.shard is None or self.shard < 0:
                raise ValueError(f"{self.kind}: requires shard >= 0")
        elif self.shard is not None:
            raise ValueError(f"{self.kind}: does not take a shard parameter")
        if needs_delay:
            if self.delay_ms is None or self.delay_ms <= 0.0:
                raise ValueError(f"{self.kind}: requires delay_ms > 0")
        elif self.delay_ms is not None:
            raise ValueError(f"{self.kind}: does not take a delay_ms parameter")
        if needs_amount:
            if self.amount is None or self.amount < 1:
                raise ValueError(f"{self.kind}: requires amount >= 1")
        elif self.amount is not None:
            raise ValueError(f"{self.kind}: does not take an amount parameter")

    @property
    def clear_at(self) -> int:
        return self.at + self.duration

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "kind": self.kind,
            "at": self.at,
            "duration": self.duration,
        }
        if self.shard is not None:
            record["shard"] = self.shard
        if self.delay_ms is not None:
            record["delay_ms"] = self.delay_ms
        if self.amount is not None:
            record["amount"] = self.amount
        return record


def _sorted_events(events) -> Tuple[FaultEvent, ...]:
    return tuple(
        sorted(events, key=lambda event: (event.at, event.kind, event.duration))
    )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, seed-stamped set of fault events."""

    events: Tuple[FaultEvent, ...]
    seed: int = 0
    spec: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", _sorted_events(self.events))

    @classmethod
    def parse(cls, spec: str, *, seed: int = 0) -> "FaultSchedule":
        """Parse a comma-separated ``kind@at+duration[:key=value...]`` spec."""
        spec = spec.strip()
        if not spec:
            raise ValueError("empty chaos spec")
        events = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                raise ValueError(f"empty fault token in chaos spec {spec!r}")
            events.append(_parse_event(token))
        return cls(events=tuple(events), seed=seed, spec=spec)

    def serve_events(self) -> Tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.kind in SERVE_FAULT_KINDS)

    def publish_events(self) -> Tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.kind in PUBLISH_FAULT_KINDS)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "spec": self.spec,
            "events": [event.as_dict() for event in self.events],
        }


_INT_PARAMS = ("shard", "amount")
_FLOAT_PARAMS = ("delay_ms",)


def _parse_event(token: str) -> FaultEvent:
    head, *param_tokens = token.split(":")
    if "@" not in head:
        raise ValueError(f"fault {token!r}: expected kind@at+duration")
    kind, _, window = head.partition("@")
    if "+" not in window:
        raise ValueError(f"fault {token!r}: expected kind@at+duration")
    at_text, _, duration_text = window.partition("+")
    try:
        at = int(at_text)
        duration = int(duration_text)
    except ValueError:
        raise ValueError(
            f"fault {token!r}: at and duration must be integers"
        ) from None
    params: Dict[str, Any] = {}
    for param in param_tokens:
        if "=" not in param:
            raise ValueError(f"fault {token!r}: expected key=value, got {param!r}")
        key, _, value = param.partition("=")
        if key in params:
            raise ValueError(f"fault {token!r}: duplicate parameter {key!r}")
        if key in _INT_PARAMS:
            try:
                params[key] = int(value)
            except ValueError:
                raise ValueError(
                    f"fault {token!r}: {key} must be an integer, got {value!r}"
                ) from None
        elif key in _FLOAT_PARAMS:
            try:
                params[key] = float(value)
            except ValueError:
                raise ValueError(
                    f"fault {token!r}: {key} must be a number, got {value!r}"
                ) from None
        else:
            raise ValueError(
                f"fault {token!r}: unknown parameter {key!r}; "
                f"known: {sorted(_INT_PARAMS + _FLOAT_PARAMS)}"
            )
    try:
        return FaultEvent(kind=kind, at=at, duration=duration, **params)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"fault {token!r}: {exc}") from None
