"""Deterministic fault injection and recovery-SLO gates for the daemon.

The chaos pack has four parts:

* :mod:`repro.chaos.schedule` -- seed-stamped :class:`FaultSchedule`
  parsing (``kind@at+duration[:key=value...]``); faults fire on request
  and publish *counts*, never the wall clock.
* :mod:`repro.chaos.injector` -- the :class:`ChaosInjector` that the
  daemon and store consult to fire/clear faults deterministically.
* :mod:`repro.chaos.slo` -- recovery-SLO evaluation (bounded error
  window, no torn reads, p99 re-convergence, generation recovery) plus
  the ``python -m repro.chaos.slo`` re-evaluation gate.
* :mod:`repro.chaos.oracle` -- healthy-subset byte-checking of degraded
  partial responses against an in-process mirror store.
"""

from repro.chaos.injector import ChaosInjector, ServeDecision
from repro.chaos.oracle import verify_chaos_responses
from repro.chaos.schedule import (
    FAULT_KINDS,
    PUBLISH_FAULT_KINDS,
    SERVE_FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
)
from repro.chaos.slo import SLOThresholds, evaluate

__all__ = [
    "FAULT_KINDS",
    "PUBLISH_FAULT_KINDS",
    "SERVE_FAULT_KINDS",
    "ChaosInjector",
    "FaultEvent",
    "FaultSchedule",
    "SLOThresholds",
    "ServeDecision",
    "evaluate",
    "verify_chaos_responses",
]
