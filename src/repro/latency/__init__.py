"""Latency substrate: topologies, per-link observation models, traces.

The paper's input is a three-day trace of application-level UDP pings among
269 PlanetLab nodes (43 million samples).  That trace is not redistributable,
so this package provides a synthetic equivalent with the same statistical
structure (see DESIGN.md, "Substitutions"):

* :mod:`repro.latency.topology` -- a geographic cluster topology producing a
  base round-trip-time matrix similar to PlanetLab's (intra-site ~1 ms,
  intra-continent tens of ms, inter-continental 100-350 ms).
* :mod:`repro.latency.linkmodel` -- per-link observation models layering
  jitter, heavy-tailed spikes, and rare multi-second outliers on top of the
  base RTT; plus a low-latency cluster model and a regime-shifting model.
* :mod:`repro.latency.trace` -- trace records and containers, plus CSV
  persistence.
* :mod:`repro.latency.planetlab` -- the "PlanetLab-like" dataset builder
  used by the experiments.
* :mod:`repro.latency.matrix` -- static latency-matrix view for
  original-paper-style (single scalar per link) evaluation.
"""

from __future__ import annotations

from repro.latency.linkmodel import (
    ClusterLink,
    HeavyTailLink,
    LinkModel,
    ShiftingLink,
    StableLink,
)
from repro.latency.matrix import LatencyMatrix
from repro.latency.planetlab import PlanetLabDataset, planetlab_topology
from repro.latency.topology import GeographicTopology, Region, Site
from repro.latency.trace import LatencyTrace, TraceRecord

__all__ = [
    "ClusterLink",
    "GeographicTopology",
    "HeavyTailLink",
    "LatencyMatrix",
    "LatencyTrace",
    "LinkModel",
    "PlanetLabDataset",
    "Region",
    "ShiftingLink",
    "Site",
    "StableLink",
    "TraceRecord",
    "planetlab_topology",
]
