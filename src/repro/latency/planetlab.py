"""Synthetic "PlanetLab-like" dataset: topology + per-link observation models.

This module stands in for the paper's three-day, 269-node PlanetLab ping
trace (43 million samples).  A :class:`PlanetLabDataset` couples a
:class:`~repro.latency.topology.GeographicTopology` with a per-link
observation model so that both uses in the paper are supported:

* **trace generation** -- :meth:`PlanetLabDataset.generate_trace` produces a
  timestamped ping trace (each node pinging peers at a fixed rate), which
  the trace-driven experiments (Sections III-V) consume;
* **live sampling** -- :meth:`PlanetLabDataset.sample_rtt` draws one
  observation for a pair at a given time, which the discrete-event protocol
  simulator (Section VI) uses as its network substrate.

Link models are created lazily and deterministically from the dataset seed
and the pair's identifiers, so the same dataset object always produces the
same statistical universe regardless of the order links are touched in.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.latency.linkmodel import (
    HeavyTailLink,
    HeavyTailParameters,
    LinkModel,
    ShiftingLink,
    StableLink,
)
from repro.latency.topology import GeographicTopology
from repro.latency.trace import LatencyTrace, TraceRecord

__all__ = ["PlanetLabDataset", "planetlab_topology", "DatasetParameters"]


def planetlab_topology(nodes: int = 269, *, seed: int = 0) -> GeographicTopology:
    """A geographic topology sized like the paper's PlanetLab slice."""
    return GeographicTopology.generate(nodes, seed=seed)


@dataclass(frozen=True, slots=True)
class DatasetParameters:
    """Statistical knobs of the synthetic dataset."""

    #: Parameters of each link's heavy-tailed observation process.
    heavy_tail: HeavyTailParameters = HeavyTailParameters()
    #: Fraction of links whose baseline shifts during the trace (route changes).
    shifting_fraction: float = 0.10
    #: Range of multipliers applied at a baseline shift.
    shift_multiplier_range: Tuple[float, float] = (0.7, 1.6)
    #: Slow drift applied to shifting links, as a fraction per hour.
    drift_fraction_per_hour: float = 0.02
    #: When True, links are noiseless (``StableLink``): the original
    #: evaluation's static-latency-matrix idealisation.
    noiseless: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.shifting_fraction <= 1.0:
            raise ValueError("shifting_fraction must be within [0, 1]")
        low, high = self.shift_multiplier_range
        if low <= 0.0 or high < low:
            raise ValueError("shift_multiplier_range must be a positive, ordered pair")


class PlanetLabDataset:
    """Topology plus per-link observation models, with trace generation."""

    def __init__(
        self,
        topology: GeographicTopology,
        *,
        seed: int = 0,
        parameters: DatasetParameters | None = None,
    ) -> None:
        self.topology = topology
        self.seed = int(seed)
        self.parameters = parameters or DatasetParameters()
        self._links: Dict[Tuple[str, str], LinkModel] = {}
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        nodes: int = 269,
        *,
        seed: int = 0,
        parameters: DatasetParameters | None = None,
    ) -> "PlanetLabDataset":
        """Build a dataset with a freshly generated topology."""
        return cls(planetlab_topology(nodes, seed=seed), seed=seed, parameters=parameters)

    # ------------------------------------------------------------------
    # Link models
    # ------------------------------------------------------------------
    @staticmethod
    def _canonical(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def _pair_seed(self, a: str, b: str, salt: str = "link") -> int:
        """A stable per-pair seed derived from the dataset seed and the names."""
        key = f"{self.seed}:{salt}:{a}:{b}".encode()
        return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")

    def link_model(self, a: str, b: str) -> LinkModel:
        """The (lazily created) observation model for the pair ``{a, b}``."""
        if a == b:
            raise ValueError("a link requires two distinct hosts")
        pair = self._canonical(a, b)
        model = self._links.get(pair)
        if model is not None:
            return model
        base = self.topology.base_rtt_ms(*pair)
        if self.parameters.noiseless:
            model = StableLink(base_rtt_ms=base, jitter_fraction=0.0)
        else:
            model = HeavyTailLink(base_rtt_ms=base, parameters=self.parameters.heavy_tail)
            pair_rng = np.random.default_rng(self._pair_seed(*pair, salt="shape"))
            if pair_rng.uniform() < self.parameters.shifting_fraction:
                # One or two shifts at random times within the first day.
                shift_count = int(pair_rng.integers(1, 3))
                times = np.sort(pair_rng.uniform(600.0, 86_400.0, size=shift_count))
                low, high = self.parameters.shift_multiplier_range
                shifts = tuple(
                    (float(t), float(pair_rng.uniform(low, high))) for t in times
                )
                model = ShiftingLink(
                    inner=model,
                    shifts=shifts,
                    drift_fraction_per_hour=self.parameters.drift_fraction_per_hour,
                )
        self._links[pair] = model
        return model

    def true_rtt_ms(self, a: str, b: str, time_s: float = 0.0) -> float:
        """The underlying baseline RTT of a pair at ``time_s``."""
        if a == b:
            return 0.0
        return self.link_model(a, b).true_rtt_ms(time_s)

    def sample_rtt(
        self,
        a: str,
        b: str,
        time_s: float,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Draw one observed RTT for the pair ``{a, b}`` at ``time_s``."""
        model = self.link_model(a, b)
        return model.sample(rng if rng is not None else self._rng, time_s)

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------
    def generate_trace(
        self,
        *,
        duration_s: float,
        ping_interval_s: float = 1.0,
        neighbors_per_node: Optional[int] = None,
        start_time_s: float = 0.0,
        seed: Optional[int] = None,
    ) -> LatencyTrace:
        """Generate a ping trace like the paper's input.

        Every node pings one peer from its neighbor set per
        ``ping_interval_s``, cycling through the set round-robin (the
        sampling discipline described in Section II).  With
        ``neighbors_per_node=None`` every other node is a neighbor
        (all-pairs over time), matching the paper's full-mesh trace.

        Scale guidance: the paper's trace is 269 nodes x 1 ping/s x 3 days
        (43M records).  For laptop-scale experiments use tens of nodes and
        minutes-to-hours of simulated time; the statistical structure per
        link is identical.
        """
        if duration_s <= 0.0:
            raise ValueError("duration_s must be positive")
        if ping_interval_s <= 0.0:
            raise ValueError("ping_interval_s must be positive")
        hosts = self.topology.host_ids
        if len(hosts) < 2:
            raise ValueError("trace generation requires at least two hosts")

        rng = np.random.default_rng(self.seed if seed is None else seed)
        neighbor_sets: Dict[str, List[str]] = {}
        for host in hosts:
            others = [h for h in hosts if h != host]
            if neighbors_per_node is not None and neighbors_per_node < len(others):
                chosen = rng.choice(len(others), size=neighbors_per_node, replace=False)
                neighbor_sets[host] = [others[int(i)] for i in chosen]
            else:
                neighbor_sets[host] = others

        records: List[TraceRecord] = []
        steps = int(duration_s / ping_interval_s)
        # Per-host phase offset so pings are spread within each interval,
        # as they would be on real, unsynchronised hosts.
        phases = {host: float(rng.uniform(0.0, ping_interval_s)) for host in hosts}
        round_robin_index = {host: 0 for host in hosts}

        for step in range(steps):
            base_time = start_time_s + step * ping_interval_s
            for host in hosts:
                neighbors = neighbor_sets[host]
                index = round_robin_index[host] % len(neighbors)
                round_robin_index[host] += 1
                peer = neighbors[index]
                time_s = base_time + phases[host]
                rtt = self.sample_rtt(host, peer, time_s, rng)
                records.append(TraceRecord(time_s=time_s, src=host, dst=peer, rtt_ms=rtt))
        return LatencyTrace(records)

    def generate_link_stream(
        self,
        a: str,
        b: str,
        *,
        duration_s: float,
        ping_interval_s: float = 1.0,
        seed: Optional[int] = None,
    ) -> LatencyTrace:
        """Generate the observation stream of a single link (Figure 3 input)."""
        rng = np.random.default_rng(self._pair_seed(a, b, salt="stream") if seed is None else seed)
        records = []
        steps = int(duration_s / ping_interval_s)
        for step in range(steps):
            time_s = step * ping_interval_s
            rtt = self.sample_rtt(a, b, time_s, rng)
            records.append(TraceRecord(time_s=time_s, src=a, dst=b, rtt_ms=rtt))
        return LatencyTrace(records)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"PlanetLabDataset(nodes={self.topology.size}, seed={self.seed}, "
            f"noiseless={self.parameters.noiseless})"
        )
