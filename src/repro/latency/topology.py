"""Geographic cluster topology producing a PlanetLab-like base RTT matrix.

PlanetLab hosts cluster at university sites; sites cluster in regions
(US East, US West, Europe, Asia in the paper's Figure 7).  Latency between
two hosts decomposes into:

* an access-link penalty per host (sub-millisecond to a few ms),
* an intra-site component (~0.5 ms) when the hosts share a site,
* a regional backbone component (propagation across the region),
* an inter-regional long-haul component when the regions differ.

The topology places each site at a 2-D "virtual geography" position per
region and converts distance to propagation delay, which is a standard and
well-validated first-order model of wide-area RTT; the heavy-tailed
observation noise is layered on top by :mod:`repro.latency.linkmodel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["Region", "Site", "Host", "GeographicTopology", "DEFAULT_REGIONS"]


@dataclass(frozen=True, slots=True)
class Region:
    """A continental region in the virtual geography.

    ``position_ms`` is the region centre expressed directly in one-way
    propagation milliseconds, so Euclidean distance between region centres
    approximates long-haul one-way delay.
    """

    name: str
    position_ms: Tuple[float, float]
    #: Radius (ms) within which the region's sites are scattered.
    spread_ms: float = 12.0


#: Region layout producing inter-regional RTTs in the ranges the paper's
#: Figure 7 implies (US East <-> US West ~70 ms, US <-> Europe ~90-120 ms,
#: Europe/US <-> Asia ~150-300 ms round trip).
DEFAULT_REGIONS: Tuple[Region, ...] = (
    Region("us-east", (0.0, 0.0), spread_ms=10.0),
    Region("us-west", (35.0, 5.0), spread_ms=10.0),
    Region("europe", (-45.0, 10.0), spread_ms=12.0),
    Region("asia", (90.0, 40.0), spread_ms=15.0),
)


@dataclass(frozen=True, slots=True)
class Site:
    """A hosting site (university/lab) within a region."""

    site_id: str
    region: str
    position_ms: Tuple[float, float]
    #: Site-wide access infrastructure quality; scales per-host access delay.
    access_quality: float = 1.0


@dataclass(frozen=True, slots=True)
class Host:
    """A single machine at a site."""

    host_id: str
    site_id: str
    region: str
    #: One-way access-link delay for this host (milliseconds).
    access_delay_ms: float


class GeographicTopology:
    """A set of hosts with a deterministic base RTT for every pair.

    Parameters
    ----------
    hosts, sites, regions:
        The topology inventory; normally built through :meth:`generate`.
    """

    def __init__(
        self,
        hosts: Sequence[Host],
        sites: Mapping[str, Site],
        regions: Mapping[str, Region],
    ) -> None:
        if not hosts:
            raise ValueError("a topology needs at least one host")
        self._hosts: Dict[str, Host] = {h.host_id: h for h in hosts}
        if len(self._hosts) != len(hosts):
            raise ValueError("host identifiers must be unique")
        self._sites = dict(sites)
        self._regions = dict(regions)
        self._order: List[str] = [h.host_id for h in hosts]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        nodes: int,
        *,
        seed: int = 0,
        regions: Sequence[Region] = DEFAULT_REGIONS,
        sites_per_region: int = 8,
        region_weights: Sequence[float] | None = None,
    ) -> "GeographicTopology":
        """Generate a topology with ``nodes`` hosts spread over ``regions``.

        Hosts are assigned to regions according to ``region_weights``
        (defaults to a PlanetLab-like skew: most hosts in the US and
        Europe), then to sites within the region, each site holding a
        handful of machines.
        """
        if nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {nodes}")
        if not regions:
            raise ValueError("at least one region is required")
        if sites_per_region < 1:
            raise ValueError("sites_per_region must be >= 1")
        rng = np.random.default_rng(seed)

        if region_weights is None:
            # Rough PlanetLab distribution circa 2005: heavy US/Europe presence.
            base_weights = {"us-east": 0.35, "us-west": 0.25, "europe": 0.28, "asia": 0.12}
            region_weights = [base_weights.get(r.name, 1.0 / len(regions)) for r in regions]
        weights = np.asarray(region_weights, dtype=float)
        if weights.shape[0] != len(regions) or np.any(weights < 0) or weights.sum() == 0:
            raise ValueError("region_weights must be non-negative and match the region count")
        weights = weights / weights.sum()

        region_map = {r.name: r for r in regions}
        sites: Dict[str, Site] = {}
        for region in regions:
            for s in range(sites_per_region):
                angle = rng.uniform(0.0, 2.0 * math.pi)
                radius = region.spread_ms * math.sqrt(rng.uniform(0.0, 1.0))
                position = (
                    region.position_ms[0] + radius * math.cos(angle),
                    region.position_ms[1] + radius * math.sin(angle),
                )
                site_id = f"{region.name}-site{s}"
                sites[site_id] = Site(
                    site_id=site_id,
                    region=region.name,
                    position_ms=position,
                    access_quality=float(rng.uniform(0.7, 1.6)),
                )

        hosts: List[Host] = []
        region_choices = rng.choice(len(regions), size=nodes, p=weights)
        for index in range(nodes):
            region = regions[int(region_choices[index])]
            site_index = int(rng.integers(0, sites_per_region))
            site = sites[f"{region.name}-site{site_index}"]
            access = float(rng.gamma(shape=2.0, scale=0.4) * site.access_quality + 0.2)
            hosts.append(
                Host(
                    host_id=f"node{index:03d}",
                    site_id=site.site_id,
                    region=region.name,
                    access_delay_ms=access,
                )
            )
        return cls(hosts, sites, region_map)

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    @property
    def host_ids(self) -> List[str]:
        return list(self._order)

    @property
    def size(self) -> int:
        return len(self._order)

    def host(self, host_id: str) -> Host:
        return self._hosts[host_id]

    def site(self, site_id: str) -> Site:
        return self._sites[site_id]

    def region_of(self, host_id: str) -> str:
        return self._hosts[host_id].region

    def hosts_in_region(self, region: str) -> List[str]:
        return [h for h in self._order if self._hosts[h].region == region]

    def regions(self) -> List[str]:
        return list(self._regions)

    # ------------------------------------------------------------------
    # Base latency model
    # ------------------------------------------------------------------
    def base_rtt_ms(self, a: str, b: str) -> float:
        """Deterministic baseline round-trip time between two hosts.

        This is the "true" underlying latency the coordinate system tries
        to capture; observation noise is added by the link models.
        """
        if a == b:
            return 0.0
        host_a = self._hosts[a]
        host_b = self._hosts[b]
        site_a = self._sites[host_a.site_id]
        site_b = self._sites[host_b.site_id]
        access = host_a.access_delay_ms + host_b.access_delay_ms
        if host_a.site_id == host_b.site_id:
            # Same machine room: switch hops only.
            return 2.0 * (0.25 + access * 0.1)
        dx = site_a.position_ms[0] - site_b.position_ms[0]
        dy = site_a.position_ms[1] - site_b.position_ms[1]
        one_way_propagation = math.hypot(dx, dy)
        # Round trip = 2x propagation + access links both ways + a small
        # fixed per-path routing/queueing floor.
        return 2.0 * (one_way_propagation + access) + 1.5

    def rtt_matrix(self) -> np.ndarray:
        """Full symmetric base-RTT matrix in host order."""
        n = self.size
        matrix = np.zeros((n, n), dtype=float)
        for i in range(n):
            for j in range(i + 1, n):
                rtt = self.base_rtt_ms(self._order[i], self._order[j])
                matrix[i, j] = rtt
                matrix[j, i] = rtt
        return matrix

    def pairs(self) -> Iterable[Tuple[str, str]]:
        """All unordered host pairs."""
        for i in range(self.size):
            for j in range(i + 1, self.size):
                yield self._order[i], self._order[j]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"GeographicTopology(hosts={self.size}, regions={len(self._regions)})"
