"""Per-link latency observation models.

Section III of the paper analyses the raw observation stream of PlanetLab
links and finds:

* most observations cluster near the link's baseline RTT,
* every link has its own heavy upper tail -- rare samples are 10-1000x the
  baseline, and 0.4% of *all* samples exceed one second,
* the outliers persist throughout the trace rather than occurring in one
  burst (Figure 3, bottom),
* the underlying baseline itself drifts over hours (Figure 7), e.g. because
  of BGP route changes.

The models here reproduce that structure on top of a deterministic baseline
RTT supplied by the topology:

* :class:`StableLink` -- baseline + light log-normal jitter; the "latency
  matrix" idealisation used by the original Vivaldi evaluation.
* :class:`HeavyTailLink` -- the paper's observed regime: jitter plus a
  mixture of moderate congestion spikes and rare multi-second outliers.
* :class:`ClusterLink` -- the low-latency LAN regime of Figure 6
  (0.4-1.2 ms spread plus a 5% tail above 1.2 ms).
* :class:`ShiftingLink` -- wraps another model and shifts its baseline at
  configurable times (route changes), driving the Figure 7 drift experiment.

All models are deterministic functions of their RNG, so experiments are
reproducible given a seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Mapping, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

__all__ = [
    "LinkModel",
    "StableLink",
    "HeavyTailLink",
    "ClusterLink",
    "ShiftingLink",
    "HeavyTailParameters",
]


@runtime_checkable
class LinkModel(Protocol):
    """One direction-agnostic link's observation process."""

    def sample(self, rng: np.random.Generator, time_s: float) -> float:
        """Return one observed RTT (milliseconds) at simulation time ``time_s``."""
        ...

    def true_rtt_ms(self, time_s: float) -> float:
        """The underlying "true" baseline RTT at ``time_s`` (for metrics)."""
        ...


@dataclass(frozen=True, slots=True)
class StableLink:
    """Baseline RTT with light multiplicative jitter and no heavy tail."""

    base_rtt_ms: float
    jitter_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.base_rtt_ms < 0.0:
            raise ValueError("base_rtt_ms must be non-negative")
        if self.jitter_fraction < 0.0:
            raise ValueError("jitter_fraction must be non-negative")

    def sample(self, rng: np.random.Generator, time_s: float) -> float:
        jitter = rng.lognormal(mean=0.0, sigma=max(self.jitter_fraction, 1e-9))
        return max(0.05, self.base_rtt_ms * jitter)

    def true_rtt_ms(self, time_s: float) -> float:
        return self.base_rtt_ms


@dataclass(frozen=True, slots=True)
class HeavyTailParameters:
    """Tuning knobs for :class:`HeavyTailLink`.

    The defaults are calibrated (see ``tests/test_latency_statistics.py``)
    so that a whole-trace histogram reproduces the paper's Figure 2 shape:
    roughly 0.4% of samples above one second and occasional samples in the
    multi-second range, while the bulk of the distribution stays within a
    few tens of percent of the baseline.
    """

    #: Standard deviation of the log-normal multiplicative jitter on the bulk.
    jitter_sigma: float = 0.08
    #: Probability that a sample is a moderate congestion/queueing spike.
    spike_probability: float = 0.03
    #: Pareto shape for moderate spikes (added delay, scaled by ``spike_scale_ms``).
    spike_pareto_shape: float = 1.6
    #: Scale of moderate spike added delay in milliseconds.
    spike_scale_ms: float = 60.0
    #: Probability that a sample is an extreme outlier (application-level
    #: scheduling delays, losses recovered by retransmission, etc.).
    outlier_probability: float = 0.004
    #: Extreme outliers are log-uniform between these bounds (milliseconds).
    outlier_range_ms: Tuple[float, float] = (1000.0, 8000.0)

    def __post_init__(self) -> None:
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ValueError("spike_probability must be within [0, 1]")
        if not 0.0 <= self.outlier_probability <= 1.0:
            raise ValueError("outlier_probability must be within [0, 1]")
        if self.spike_probability + self.outlier_probability > 1.0:
            raise ValueError("spike and outlier probabilities must sum to <= 1")
        if self.outlier_range_ms[0] <= 0 or self.outlier_range_ms[1] < self.outlier_range_ms[0]:
            raise ValueError("outlier_range_ms must be a positive, ordered pair")

    @classmethod
    def from_mapping(cls, overrides: "Mapping[str, object]") -> "HeavyTailParameters":
        """Build parameters from a plain mapping of field overrides.

        Used by the declarative scenario layer, whose specs round-trip
        through JSON: unknown keys raise a readable error and list values
        (JSON's spelling of tuples) are converted back to tuples.
        """
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ValueError(
                f"unknown heavy-tail parameters {unknown}; known: {sorted(known)}"
            )
        coerced = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in overrides.items()
        }
        return cls(**coerced)  # type: ignore[arg-type]


@dataclass(frozen=True, slots=True)
class HeavyTailLink:
    """The paper's observed wide-area regime: bulk + spikes + rare outliers."""

    base_rtt_ms: float
    parameters: HeavyTailParameters = field(default_factory=HeavyTailParameters)

    def __post_init__(self) -> None:
        if self.base_rtt_ms < 0.0:
            raise ValueError("base_rtt_ms must be non-negative")

    def sample(self, rng: np.random.Generator, time_s: float) -> float:
        params = self.parameters
        draw = rng.uniform()
        bulk = self.base_rtt_ms * rng.lognormal(mean=0.0, sigma=params.jitter_sigma)
        if draw < params.outlier_probability:
            low, high = params.outlier_range_ms
            outlier = math.exp(rng.uniform(math.log(low), math.log(high)))
            return max(bulk, outlier)
        if draw < params.outlier_probability + params.spike_probability:
            spike = (rng.pareto(params.spike_pareto_shape) + 1.0) * params.spike_scale_ms
            return bulk + spike
        return max(0.05, bulk)

    def true_rtt_ms(self, time_s: float) -> float:
        return self.base_rtt_ms


@dataclass(frozen=True, slots=True)
class ClusterLink:
    """Low-latency LAN link with measurement noise (the Figure 6 setup).

    The paper's local cluster shows a fairly Normal spread between 0.4 and
    1.2 ms plus a ~5% tail above 1.2 ms attributed to context switches and
    background load -- noise below the measurement tool's precision.
    """

    base_rtt_ms: float = 0.8
    spread_ms: float = 0.2
    tail_probability: float = 0.05
    tail_range_ms: Tuple[float, float] = (1.2, 5.0)

    def __post_init__(self) -> None:
        if self.base_rtt_ms <= 0.0:
            raise ValueError("base_rtt_ms must be positive")
        if not 0.0 <= self.tail_probability <= 1.0:
            raise ValueError("tail_probability must be within [0, 1]")

    def sample(self, rng: np.random.Generator, time_s: float) -> float:
        if rng.uniform() < self.tail_probability:
            low, high = self.tail_range_ms
            return float(rng.uniform(low, high))
        value = rng.normal(self.base_rtt_ms, self.spread_ms)
        return float(min(max(0.05, value), self.tail_range_ms[0]))

    def true_rtt_ms(self, time_s: float) -> float:
        return self.base_rtt_ms


@dataclass(frozen=True, slots=True)
class ShiftingLink:
    """Wraps a link model and shifts its baseline at scheduled times.

    ``shifts`` is a sequence of ``(time_s, multiplier)`` pairs; from
    ``time_s`` onward the wrapped model's baseline is scaled by
    ``multiplier``.  This models BGP route changes and the slow drift of
    Figure 7.  An optional linear drift adds a steady ramp in between
    shifts.
    """

    inner: LinkModel
    shifts: Tuple[Tuple[float, float], ...] = ()
    drift_fraction_per_hour: float = 0.0

    def __post_init__(self) -> None:
        previous = -math.inf
        for time_s, multiplier in self.shifts:
            if time_s < previous:
                raise ValueError("shifts must be ordered by time")
            if multiplier <= 0.0:
                raise ValueError("shift multipliers must be positive")
            previous = time_s

    def _scale(self, time_s: float) -> float:
        scale = 1.0
        for shift_time, multiplier in self.shifts:
            if time_s >= shift_time:
                scale = multiplier
        scale *= 1.0 + self.drift_fraction_per_hour * (time_s / 3600.0)
        return max(scale, 1e-3)

    def sample(self, rng: np.random.Generator, time_s: float) -> float:
        return self.inner.sample(rng, time_s) * self._scale(time_s)

    def true_rtt_ms(self, time_s: float) -> float:
        return self.inner.true_rtt_ms(time_s) * self._scale(time_s)
