"""Latency trace records and containers.

The paper's input is a trace of timestamped per-link ping measurements.  A
:class:`TraceRecord` is one measurement (``time_s``, source, destination,
observed RTT); a :class:`LatencyTrace` is an ordered collection with
convenience accessors (per-link streams, time slicing) plus CSV persistence
so generated traces can be cached on disk and shared between experiments.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["TraceRecord", "LatencyTrace"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One latency measurement: ``src`` pinged ``dst`` at ``time_s``."""

    time_s: float
    src: str
    dst: str
    rtt_ms: float

    def link(self) -> Tuple[str, str]:
        """Canonical (sorted) link identifier, ignoring direction."""
        return (self.src, self.dst) if self.src <= self.dst else (self.dst, self.src)


class LatencyTrace:
    """An ordered collection of latency measurements.

    Records are kept sorted by timestamp; all accessors return copies so a
    trace can be shared between experiments without aliasing surprises.
    """

    def __init__(self, records: Iterable[TraceRecord] = ()) -> None:
        self._records: List[TraceRecord] = sorted(records, key=lambda r: r.time_s)

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    def append(self, record: TraceRecord) -> None:
        """Append a record; must not precede the last timestamp."""
        if self._records and record.time_s < self._records[-1].time_s:
            raise ValueError(
                "records must be appended in non-decreasing time order; "
                f"got {record.time_s} after {self._records[-1].time_s}"
            )
        self._records.append(record)

    def extend(self, records: Iterable[TraceRecord]) -> None:
        for record in records:
            self.append(record)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def duration_s(self) -> float:
        """Time span covered by the trace (0 for traces with < 2 records)."""
        if len(self._records) < 2:
            return 0.0
        return self._records[-1].time_s - self._records[0].time_s

    @property
    def start_time_s(self) -> float:
        if not self._records:
            return 0.0
        return self._records[0].time_s

    @property
    def end_time_s(self) -> float:
        if not self._records:
            return 0.0
        return self._records[-1].time_s

    def nodes(self) -> List[str]:
        """Sorted list of all node identifiers appearing in the trace."""
        seen = set()
        for record in self._records:
            seen.add(record.src)
            seen.add(record.dst)
        return sorted(seen)

    def rtts(self) -> np.ndarray:
        """All observed RTTs as a NumPy array (in record order)."""
        return np.asarray([r.rtt_ms for r in self._records], dtype=float)

    def per_link(self) -> Dict[Tuple[str, str], List[TraceRecord]]:
        """Group records by canonical link, preserving time order."""
        links: Dict[Tuple[str, str], List[TraceRecord]] = {}
        for record in self._records:
            links.setdefault(record.link(), []).append(record)
        return links

    def per_source(self) -> Dict[str, List[TraceRecord]]:
        """Group records by the measuring (source) node."""
        sources: Dict[str, List[TraceRecord]] = {}
        for record in self._records:
            sources.setdefault(record.src, []).append(record)
        return sources

    def link_stream(self, a: str, b: str) -> List[TraceRecord]:
        """The observation stream of one link (either direction)."""
        key = (a, b) if a <= b else (b, a)
        return [r for r in self._records if r.link() == key]

    def time_slice(self, start_s: float, end_s: float) -> "LatencyTrace":
        """Records with ``start_s <= time_s < end_s`` as a new trace."""
        if end_s < start_s:
            raise ValueError("end_s must not precede start_s")
        return LatencyTrace(r for r in self._records if start_s <= r.time_s < end_s)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    _CSV_HEADER = ("time_s", "src", "dst", "rtt_ms")

    def to_csv(self, path: str | Path) -> None:
        """Write the trace to a CSV file."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self._CSV_HEADER)
            for record in self._records:
                writer.writerow((f"{record.time_s:.6f}", record.src, record.dst, f"{record.rtt_ms:.6f}"))

    @classmethod
    def from_csv(cls, path: str | Path) -> "LatencyTrace":
        """Read a trace previously written by :meth:`to_csv`."""
        records: List[TraceRecord] = []
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None or tuple(header) != cls._CSV_HEADER:
                raise ValueError(f"{path} does not look like a latency trace CSV")
            for row in reader:
                time_s, src, dst, rtt_ms = row
                records.append(TraceRecord(float(time_s), src, dst, float(rtt_ms)))
        return cls(records)

    def to_csv_string(self) -> str:
        """The CSV serialisation as a string (handy for tests)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self._CSV_HEADER)
        for record in self._records:
            writer.writerow((f"{record.time_s:.6f}", record.src, record.dst, f"{record.rtt_ms:.6f}"))
        return buffer.getvalue()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"LatencyTrace(records={len(self._records)}, "
            f"nodes={len(self.nodes())}, duration_s={self.duration_s:.0f})"
        )
