"""Static latency-matrix abstraction.

The original Vivaldi evaluation (and most prior network-coordinate work)
summarised each link with a single scalar and fed that fixed value into the
algorithm on every observation.  The paper argues this idealisation hides
the instability problem entirely.  :class:`LatencyMatrix` implements that
idealised substrate so the baseline comparison ("Vivaldi on a latency
matrix converges beautifully") can be reproduced and contrasted with the
stream-driven experiments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.latency.topology import GeographicTopology

__all__ = ["LatencyMatrix"]


class LatencyMatrix:
    """A symmetric matrix of fixed per-pair round-trip times."""

    def __init__(self, node_ids: Sequence[str], matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("matrix must be square")
        if matrix.shape[0] != len(node_ids):
            raise ValueError("matrix size must match the number of node ids")
        if len(set(node_ids)) != len(node_ids):
            raise ValueError("node ids must be unique")
        if np.any(matrix < 0.0):
            raise ValueError("latencies must be non-negative")
        if not np.allclose(matrix, matrix.T):
            raise ValueError("latency matrices must be symmetric")
        self._ids: List[str] = list(node_ids)
        self._index: Dict[str, int] = {nid: i for i, nid in enumerate(self._ids)}
        self._matrix = matrix.copy()
        np.fill_diagonal(self._matrix, 0.0)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_topology(cls, topology: GeographicTopology) -> "LatencyMatrix":
        """Summarise a topology's base RTTs into a static matrix."""
        return cls(topology.host_ids, topology.rtt_matrix())

    @classmethod
    def from_dict(cls, latencies: Mapping[Tuple[str, str], float]) -> "LatencyMatrix":
        """Build a matrix from ``{(a, b): rtt_ms}`` entries (symmetrised)."""
        nodes = sorted({n for pair in latencies for n in pair})
        index = {n: i for i, n in enumerate(nodes)}
        matrix = np.zeros((len(nodes), len(nodes)), dtype=float)
        for (a, b), rtt in latencies.items():
            if a == b:
                continue
            matrix[index[a], index[b]] = rtt
            matrix[index[b], index[a]] = rtt
        return cls(nodes, matrix)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> List[str]:
        return list(self._ids)

    @property
    def size(self) -> int:
        return len(self._ids)

    def rtt_ms(self, a: str, b: str) -> float:
        """The fixed RTT between two nodes."""
        return float(self._matrix[self._index[a], self._index[b]])

    def as_array(self) -> np.ndarray:
        """A copy of the underlying matrix (node order = :attr:`node_ids`)."""
        return self._matrix.copy()

    def pairs(self) -> Iterable[Tuple[str, str, float]]:
        """All unordered pairs with their RTT."""
        for i in range(self.size):
            for j in range(i + 1, self.size):
                yield self._ids[i], self._ids[j], float(self._matrix[i, j])

    # ------------------------------------------------------------------
    # Properties of the metric
    # ------------------------------------------------------------------
    def triangle_violation_fraction(self, sample_limit: int | None = 50_000, seed: int = 0) -> float:
        """Fraction of node triples violating the triangle inequality.

        Real latency spaces violate the triangle inequality (a core reason
        perfect embeddings are impossible); this diagnostic quantifies how
        non-metric a matrix is.  Triples are sampled when the exhaustive
        count exceeds ``sample_limit``.
        """
        n = self.size
        if n < 3:
            return 0.0
        rng = np.random.default_rng(seed)
        total_triples = n * (n - 1) * (n - 2) // 6
        violations = 0
        checked = 0
        if sample_limit is None or total_triples <= sample_limit:
            for i in range(n):
                for j in range(i + 1, n):
                    for k in range(j + 1, n):
                        checked += 1
                        ab = self._matrix[i, j]
                        bc = self._matrix[j, k]
                        ac = self._matrix[i, k]
                        if ab > bc + ac or bc > ab + ac or ac > ab + bc:
                            violations += 1
        else:
            for _ in range(sample_limit):
                i, j, k = rng.choice(n, size=3, replace=False)
                checked += 1
                ab = self._matrix[i, j]
                bc = self._matrix[j, k]
                ac = self._matrix[i, k]
                if ab > bc + ac or bc > ab + ac or ac > ab + bc:
                    violations += 1
        return violations / checked if checked else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"LatencyMatrix(nodes={self.size})"
