"""Node churn for the protocol simulation.

The paper's deployment keeps a fixed node population, but it notes that "in
a long-running system where nodes periodically enter and leave, adding a
delay to the filter would increase its robustness against these
pathological cases" (Section VI).  :class:`ChurnModel` makes that scenario
testable: it schedules alternating offline/online periods for a fraction of
the hosts, with exponentially distributed session and downtime lengths (the
standard churn model for peer-to-peer measurement studies).

While offline a host neither samples nor answers pings; on rejoining, its
neighbors' per-link filters still hold stale history, which is exactly the
situation the warm-up delay targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.netsim.host import SimulatedHost
from repro.netsim.simulator import Simulator
from repro.stats.sampling import derive_rng

__all__ = ["ChurnConfig", "ChurnModel"]


@dataclass(frozen=True, slots=True)
class ChurnConfig:
    """Churn process parameters."""

    #: Fraction of hosts that participate in churn (the rest stay up).
    churning_fraction: float = 0.3
    #: Mean online session length in seconds (exponentially distributed).
    mean_session_s: float = 600.0
    #: Mean offline period length in seconds (exponentially distributed).
    mean_downtime_s: float = 120.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.churning_fraction <= 1.0:
            raise ValueError("churning_fraction must be within [0, 1]")
        if self.mean_session_s <= 0.0 or self.mean_downtime_s <= 0.0:
            raise ValueError("session and downtime means must be positive")


class ChurnModel:
    """Drives hosts offline and back online over the simulation."""

    def __init__(
        self,
        simulator: Simulator,
        hosts: Dict[str, SimulatedHost],
        *,
        config: ChurnConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.simulator = simulator
        self.hosts = hosts
        self.config = config or ChurnConfig()
        self._rng = derive_rng(seed, "churn")
        self._transitions = 0
        self._churners: List[str] = []

    @property
    def transitions(self) -> int:
        """Total offline/online transitions performed."""
        return self._transitions

    @property
    def churning_hosts(self) -> List[str]:
        return list(self._churners)

    def start(self) -> None:
        """Select the churning hosts and schedule their first departures."""
        host_ids = list(self.hosts)
        churner_count = int(round(len(host_ids) * self.config.churning_fraction))
        if churner_count == 0:
            return
        chosen = self._rng.choice(len(host_ids), size=churner_count, replace=False)
        self._churners = [host_ids[int(i)] for i in chosen]
        for host_id in self._churners:
            delay = float(self._rng.exponential(self.config.mean_session_s))
            self.simulator.schedule_in(delay, self._make_leave(host_id), label=f"leave {host_id}")

    def _make_leave(self, host_id: str):
        def leave() -> None:
            host = self.hosts[host_id]
            if host.online:
                host.online = False
                self._transitions += 1
            downtime = float(self._rng.exponential(self.config.mean_downtime_s))
            self.simulator.schedule_in(downtime, self._make_join(host_id), label=f"join {host_id}")

        return leave

    def _make_join(self, host_id: str):
        def join() -> None:
            host = self.hosts[host_id]
            if not host.online:
                host.online = True
                self._transitions += 1
            session = float(self._rng.exponential(self.config.mean_session_s))
            self.simulator.schedule_in(session, self._make_leave(host_id), label=f"leave {host_id}")

        return join
