"""Discrete-event simulation of the distributed coordinate protocol.

Two execution modes cover the paper's two evaluation styles:

* **Trace replay** (:mod:`repro.netsim.replay`) -- feed a pre-generated
  latency trace to a set of :class:`~repro.core.node.CoordinateNode`
  instances, mimicking the paper's simulator that "accepted our raw ping
  trace as input and mimicked the distributed behavior of Vivaldi".  Used
  by the Section III-V experiments.
* **Protocol simulation** (:mod:`repro.netsim.simulator`,
  :mod:`repro.netsim.protocol`, :mod:`repro.netsim.runner`) -- a full
  discrete-event run of the deployed system: per-node neighbor sets, gossip
  discovery, round-robin sampling every few seconds, and message delivery
  with latency drawn from the link models.  Used for the Section VI
  ("PlanetLab") experiments.

A third mode, **batch simulation** (:mod:`repro.netsim.batch`), is a
synchronous-round discretisation of the protocol whose write path runs
either on the scalar core (the correctness oracle) or as NumPy array
operations (:mod:`repro.core.vectorized`), scaling tick-based runs to tens
of thousands of nodes.
"""

from __future__ import annotations

from repro.netsim.batch import (
    BatchLinkSampler,
    BatchMetrics,
    BatchSimulationResult,
    ScalarTickBackend,
    SimulationBackend,
    VectorizedTickBackend,
    run_batch_simulation,
)
from repro.netsim.churn import ChurnConfig, ChurnModel
from repro.netsim.events import Event, EventQueue
from repro.netsim.host import SimulatedHost
from repro.netsim.network import Network
from repro.netsim.protocol import PingProtocol, ProtocolConfig
from repro.netsim.replay import ReplayResult, replay_trace
from repro.netsim.runner import SimulationConfig, SimulationResult, run_simulation
from repro.netsim.simulator import Simulator

__all__ = [
    "BatchLinkSampler",
    "BatchMetrics",
    "BatchSimulationResult",
    "ChurnConfig",
    "ChurnModel",
    "Event",
    "EventQueue",
    "Network",
    "PingProtocol",
    "ProtocolConfig",
    "ReplayResult",
    "ScalarTickBackend",
    "SimulatedHost",
    "SimulationBackend",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "VectorizedTickBackend",
    "replay_trace",
    "run_batch_simulation",
    "run_simulation",
]
