"""The sampling protocol: periodic pings, gossip, coordinate exchange.

Mirrors the deployed system described in Sections II and VI of the paper:

* each node starts with a small bootstrap neighbor set;
* every ``sampling_interval_s`` (5 seconds on PlanetLab) it pings the next
  neighbor in round-robin order;
* the response carries the peer's current system coordinate and error
  estimate, plus one gossiped neighbor address, which the sampler adds to
  its own neighbor set;
* the measured RTT, the peer coordinate, and the peer error are fed into
  the local coordinate subsystem.

The protocol only reads the *system-level* state of the peer -- exactly what
a real response message would contain -- so the simulation faithfully
reproduces the information flow of the deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.netsim.host import SimulatedHost
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator
from repro.stats.sampling import derive_rng

__all__ = ["ProtocolConfig", "PingProtocol"]


@dataclass(frozen=True, slots=True)
class ProtocolConfig:
    """Timing and gossip parameters of the sampling protocol."""

    #: Seconds between successive samples from one node (5 s in Section VI).
    sampling_interval_s: float = 5.0
    #: Random phase spread applied to each node's first sample, so the
    #: population does not ping in lockstep.
    initial_phase_spread_s: float = 5.0
    #: Whether responses piggyback one gossiped neighbor address.
    gossip_enabled: bool = True

    def __post_init__(self) -> None:
        if self.sampling_interval_s <= 0.0:
            raise ValueError("sampling_interval_s must be positive")
        if self.initial_phase_spread_s < 0.0:
            raise ValueError("initial_phase_spread_s must be non-negative")


#: Callback invoked after every processed observation:
#: ``(time_s, host, peer_id, raw_rtt_ms, observation_result)``.
ObservationCallback = Callable[[float, SimulatedHost, str, float, object], None]


class PingProtocol:
    """Drives the sampling loops of all hosts on top of the simulator."""

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        hosts: Dict[str, SimulatedHost],
        *,
        config: ProtocolConfig | None = None,
        seed: int = 0,
        on_observation: Optional[ObservationCallback] = None,
    ) -> None:
        if not hosts:
            raise ValueError("the protocol needs at least one host")
        self.simulator = simulator
        self.network = network
        self.hosts = hosts
        self.config = config or ProtocolConfig()
        self._rng = derive_rng(seed, "protocol")
        self._on_observation = on_observation
        self._samples_attempted = 0
        self._samples_completed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule every host's first sampling round."""
        for host in self.hosts.values():
            phase = float(self._rng.uniform(0.0, self.config.initial_phase_spread_s))
            self.simulator.schedule_in(
                phase, self._make_sampler(host), label=f"sample {host.host_id}"
            )

    @property
    def samples_attempted(self) -> int:
        return self._samples_attempted

    @property
    def samples_completed(self) -> int:
        return self._samples_completed

    # ------------------------------------------------------------------
    # Sampling rounds
    # ------------------------------------------------------------------
    def _make_sampler(self, host: SimulatedHost) -> Callable[[], None]:
        def sample_once() -> None:
            self._sample(host)
            self.simulator.schedule_in(
                self.config.sampling_interval_s,
                sample_once,
                label=f"sample {host.host_id}",
            )

        return sample_once

    def _sample(self, host: SimulatedHost) -> None:
        if not host.online:
            return
        target_id = host.next_sample_target()
        if target_id is None or target_id not in self.hosts:
            return
        self._samples_attempted += 1
        target = self.hosts[target_id]
        if not target.online:
            # An offline peer never answers; the ping simply times out.
            return

        def on_response(rtt_ms: float) -> None:
            self._samples_completed += 1
            now = self.simulator.now
            # The response carries the peer's state *as of delivery time*.
            result = host.observe(
                target_id,
                target.system_coordinate,
                target.error_estimate,
                rtt_ms,
                peer_application_coordinate=target.application_coordinate,
            )
            if self.config.gossip_enabled:
                gossiped = target.gossip_address(float(self._rng.uniform()))
                if gossiped is not None and gossiped != host.host_id:
                    host.add_neighbor(gossiped)
            if self._on_observation is not None:
                self._on_observation(now, host, target_id, rtt_ms, result)

        self.network.send_ping(host.host_id, target_id, on_response)
