"""Synchronous-round batch simulation: the vectorized write path's driver.

The discrete-event simulator (:mod:`repro.netsim.runner`) is faithful to
the deployed protocol -- per-host phases, in-flight responses, gossip --
but processes one observation at a time, which caps runs at a few hundred
nodes.  This module defines a *tick-based* discretisation of the same
protocol that advances the whole population per tick:

* every ``sampling_interval_s`` (one tick), each online node pings the next
  neighbor in its round-robin set (the bootstrap ring plus one random
  long-range contact, exactly as :func:`~repro.netsim.runner.run_simulation`
  builds it);
* RTTs are drawn in one batch from the same per-link models the dataset
  would give the event-driven simulator (:class:`BatchLinkSampler`);
* observations are applied synchronously with peer state read at the start
  of the tick (a Jacobi-style update), instead of at response-delivery time.

Two interchangeable backends advance the per-node state through that
schedule, behind the :class:`SimulationBackend` protocol:

* :class:`ScalarTickBackend` -- the correctness oracle: a Python loop
  driving the *unmodified* scalar core (:class:`~repro.core.node.CoordinateNode`
  with its filters and heuristics) one node at a time;
* :class:`VectorizedTickBackend` -- the NumPy batch write path
  (:class:`~repro.core.vectorized.VectorizedNodeState`).

Both consume identical tick inputs (same RNG streams, same churn timeline,
same RTT batches), so their outputs are directly comparable; the vectorized
backend is written to reproduce the oracle byte-for-byte (see
``tests/test_vectorized.py``), which is what ``strict_equivalence`` specs
assert end to end.

Differences from the event-driven simulator (documented, deliberate):
observations apply at the tick boundary rather than one RTT later, gossip
is disabled (neighbor sets stay fixed), and the RNG streams are batch-
shaped -- so batch metrics are *statistically* comparable to event-driven
metrics, not bit-identical to them.  The equivalence guarantee is between
the two batch backends.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.core.coordinate import Coordinate
from repro.core.node import CoordinateNode
from repro.core.vectorized import TickObservations, TickOutcome, VectorizedNodeState
from repro.latency.linkmodel import ShiftingLink
from repro.latency.planetlab import PlanetLabDataset
from repro.metrics.collector import SystemSnapshot
from repro.netsim.churn import ChurnConfig
from repro.netsim.runner import SimulationConfig
from repro.service.publish import EpochDelta, EpochPublisher
from repro.stats.sampling import derive_rng

__all__ = [
    "BACKEND_KINDS",
    "BatchChurnSchedule",
    "BatchLinkSampler",
    "BatchMetrics",
    "BatchSimulationResult",
    "ScalarTickBackend",
    "SimulationBackend",
    "VectorizedTickBackend",
    "run_batch_simulation",
]

#: Backend names accepted by :func:`run_batch_simulation`.
BACKEND_KINDS = ("scalar", "vectorized")


# ----------------------------------------------------------------------
# Backend protocol and implementations
# ----------------------------------------------------------------------
@runtime_checkable
class SimulationBackend(Protocol):
    """Advances the whole population's coordinate state tick by tick."""

    name: str

    @property
    def phase_seconds(self) -> Dict[str, float]:
        """Wall-clock seconds accumulated per internal phase."""
        ...

    def tick(self, observations: TickObservations) -> TickOutcome:
        """Apply one tick's completed observations; peer state is read at
        the start of the tick for every observation in the batch."""
        ...

    def final_coordinates(self, *, level: str = "application") -> List[Coordinate]:
        """Current coordinate of every node, in host order."""
        ...

    def coordinate_arrays(
        self, *, level: str = "application"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(components (n, d), heights (n,))`` in host order.

        The array twin of :meth:`final_coordinates`: no per-node object
        materialisation, which is what the service layer's zero-copy
        snapshot ingest consumes.  Application-level arrays must be
        *detached* (not views of live state -- both implementations
        materialise the has-app fallback into fresh arrays anyway), so
        publishers can adopt them without copying; system-level arrays
        may be live views.
        """
        ...


class VectorizedTickBackend:
    """The NumPy batch write path behind the backend protocol."""

    name = "vectorized"

    def __init__(self, host_ids: List[str], config, neighbor_slots: int) -> None:
        self.state = VectorizedNodeState(len(host_ids), config, neighbor_slots)

    @property
    def phase_seconds(self) -> Dict[str, float]:
        return self.state.phase_seconds

    def tick(self, observations: TickObservations) -> TickOutcome:
        return self.state.observe_batch(observations)

    def final_coordinates(self, *, level: str = "application") -> List[Coordinate]:
        return self.state.coordinate_objects(level=level)

    def coordinate_arrays(
        self, *, level: str = "application"
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.state.coordinate_arrays(level=level)


class ScalarTickBackend:
    """The correctness oracle: the unmodified scalar core, one node at a time.

    Each node is a full :class:`~repro.core.node.CoordinateNode` -- the same
    filters, Vivaldi update and heuristics the event-driven simulator uses
    -- driven through the synchronous-round schedule.  This is the baseline
    the vectorized backend must reproduce and the benchmark it must beat.
    """

    name = "scalar"

    def __init__(self, host_ids: List[str], config, neighbor_slots: int) -> None:
        self.host_ids = list(host_ids)
        self.nodes = [CoordinateNode(host_id, config) for host_id in host_ids]
        self.phase_seconds: Dict[str, float] = {"update": 0.0}
        self._dimensions = config.vivaldi.dimensions

    def tick(self, observations: TickObservations) -> TickOutcome:
        started = time.perf_counter()
        m = observations.node_idx.shape[0]
        d = self._dimensions
        sys_rows = np.empty((m, d))
        app_rows = np.empty((m, d))
        rel = np.full(m, np.nan)
        app_rel = np.full(m, np.nan)
        updated = np.zeros(m, dtype=bool)

        # Snapshot every referenced peer before any node updates, the
        # synchronous-round semantics both backends share.
        snapshots = {}
        for p in np.unique(observations.peer_idx):
            node = self.nodes[int(p)]
            snapshots[int(p)] = (
                node.system_coordinate,
                node.error_estimate,
                node.application_coordinate,
            )

        for j in range(m):
            i = int(observations.node_idx[j])
            p = int(observations.peer_idx[j])
            peer_sys, peer_err, peer_app = snapshots[p]
            result = self.nodes[i].observe(
                self.host_ids[p],
                peer_sys,
                peer_err,
                float(observations.rtt_ms[j]),
                peer_application_coordinate=peer_app,
            )
            sys_rows[j] = result.system_coordinate.components
            app_rows[j] = self.nodes[i].application_coordinate.components
            if result.relative_error is not None:
                rel[j] = result.relative_error
            if result.application_relative_error is not None:
                app_rel[j] = result.application_relative_error
            updated[j] = result.application_update is not None

        self.phase_seconds["update"] += time.perf_counter() - started
        return TickOutcome(
            system_coords=sys_rows,
            application_coords=app_rows,
            relative_error=rel,
            application_relative_error=app_rel,
            application_updated=updated,
        )

    def final_coordinates(self, *, level: str = "application") -> List[Coordinate]:
        if level == "system":
            return [node.system_coordinate for node in self.nodes]
        return [node.application_coordinate for node in self.nodes]

    def coordinate_arrays(
        self, *, level: str = "application"
    ) -> Tuple[np.ndarray, np.ndarray]:
        coordinates = self.final_coordinates(level=level)
        components = np.array([c.components for c in coordinates], dtype=np.float64)
        heights = np.array([c.height for c in coordinates], dtype=np.float64)
        return components, heights


def make_backend(
    kind: str, host_ids: List[str], config, neighbor_slots: int
) -> SimulationBackend:
    if kind == "scalar":
        return ScalarTickBackend(host_ids, config, neighbor_slots)
    if kind == "vectorized":
        return VectorizedTickBackend(host_ids, config, neighbor_slots)
    raise ValueError(f"unknown backend {kind!r}; expected one of {BACKEND_KINDS}")


# ----------------------------------------------------------------------
# Batched RTT sampling
# ----------------------------------------------------------------------
class BatchLinkSampler:
    """Vectorized per-(node, neighbor-slot) RTT sampling.

    Built from the same lazily created per-pair link models the dataset
    gives the event-driven simulator, so the statistical universe (base
    RTTs, which links shift and when, drift rates, heavy-tail parameters)
    is identical; only the RNG stream shape differs (one batched draw per
    tick instead of one scalar draw per ping).
    """

    def __init__(
        self,
        dataset: PlanetLabDataset,
        host_ids: List[str],
        neighbor_matrix: np.ndarray,
        neighbor_counts: np.ndarray,
    ) -> None:
        self.parameters = dataset.parameters
        n, kmax = neighbor_matrix.shape
        self.base = np.zeros((n, kmax))
        self.shift_t1 = np.full((n, kmax), np.inf)
        self.shift_m1 = np.ones((n, kmax))
        self.shift_t2 = np.full((n, kmax), np.inf)
        self.shift_m2 = np.ones((n, kmax))
        self.drift = np.zeros((n, kmax))
        for i in range(n):
            for s in range(int(neighbor_counts[i])):
                j = int(neighbor_matrix[i, s])
                model = dataset.link_model(host_ids[i], host_ids[j])
                if isinstance(model, ShiftingLink):
                    self.drift[i, s] = model.drift_fraction_per_hour
                    shifts = model.shifts
                    if len(shifts) > 2:
                        # The vectorized scale path holds two shift slots
                        # (all the generator produces); silently dropping
                        # extra shifts would skew an externally supplied
                        # universe.
                        raise ValueError(
                            f"link {host_ids[i]}~{host_ids[j]} has {len(shifts)} "
                            "baseline shifts; the batch sampler supports at most 2"
                        )
                    if shifts:
                        self.shift_t1[i, s], self.shift_m1[i, s] = shifts[0]
                    if len(shifts) > 1:
                        self.shift_t2[i, s], self.shift_m2[i, s] = shifts[1]
                    model = model.inner
                self.base[i, s] = model.base_rtt_ms

    def sample(
        self,
        node_idx: np.ndarray,
        slot_idx: np.ndarray,
        time_s: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One observed RTT per (node, slot) pair at simulation time ``time_s``."""
        base = self.base[node_idx, slot_idx]
        m = base.shape[0]
        if m == 0:
            return base
        if self.parameters.noiseless:
            # StableLink with jitter_fraction=0 (sigma floored at 1e-9).
            jitter = rng.lognormal(mean=0.0, sigma=1e-9, size=m)
            return np.maximum(0.05, base * jitter)

        heavy = self.parameters.heavy_tail
        draw = rng.uniform(size=m)
        bulk = base * rng.lognormal(mean=0.0, sigma=heavy.jitter_sigma, size=m)
        value = np.maximum(0.05, bulk)
        outlier = draw < heavy.outlier_probability
        if np.any(outlier):
            low, high = heavy.outlier_range_ms
            extremes = np.exp(
                rng.uniform(math.log(low), math.log(high), size=int(outlier.sum()))
            )
            value[outlier] = np.maximum(bulk[outlier], extremes)
        spike = ~outlier & (draw < heavy.outlier_probability + heavy.spike_probability)
        if np.any(spike):
            spikes = (
                rng.pareto(heavy.spike_pareto_shape, size=int(spike.sum())) + 1.0
            ) * heavy.spike_scale_ms
            value[spike] = bulk[spike] + spikes

        # ShiftingLink scaling: the last shift whose time has passed wins,
        # then the slow linear drift ramps on top.
        scale = np.ones(m)
        scale = np.where(time_s >= self.shift_t1[node_idx, slot_idx],
                         self.shift_m1[node_idx, slot_idx], scale)
        scale = np.where(time_s >= self.shift_t2[node_idx, slot_idx],
                         self.shift_m2[node_idx, slot_idx], scale)
        scale = scale * (1.0 + self.drift[node_idx, slot_idx] * (time_s / 3600.0))
        return value * np.maximum(scale, 1e-3)


# ----------------------------------------------------------------------
# Churn
# ----------------------------------------------------------------------
class BatchChurnSchedule:
    """Precomputed churn timeline shared by both backends.

    Mirrors :class:`~repro.netsim.churn.ChurnModel`: the same churner
    selection draw (``derive_rng(seed, "churn")``), exponentially
    distributed session and downtime lengths, alternating from an online
    start.  The whole timeline is materialised up front so online masks
    are a vectorized parity count over toggle times.
    """

    def __init__(
        self, node_count: int, config: ChurnConfig, duration_s: float, seed: int
    ) -> None:
        self.node_count = node_count
        rng = derive_rng(seed, "churn")
        churner_count = int(round(node_count * config.churning_fraction))
        self.churners = np.zeros(0, dtype=np.int64)
        self._toggles = np.zeros((0, 0))
        self.transitions = 0
        if churner_count == 0:
            return
        chosen = rng.choice(node_count, size=churner_count, replace=False)
        self.churners = np.sort(chosen.astype(np.int64))
        timelines: List[List[float]] = []
        for _ in range(churner_count):
            toggles: List[float] = []
            t = float(rng.exponential(config.mean_session_s))
            online = True
            while t <= duration_s:
                toggles.append(t)
                online = not online
                mean = config.mean_session_s if online else config.mean_downtime_s
                t += float(rng.exponential(mean))
            timelines.append(toggles)
            self.transitions += len(toggles)
        width = max((len(t) for t in timelines), default=0)
        self._toggles = np.full((churner_count, max(width, 1)), np.inf)
        for row, toggles in enumerate(timelines):
            self._toggles[row, : len(toggles)] = toggles

    def online_mask(self, time_s: float) -> np.ndarray:
        """Which nodes are online at ``time_s`` (non-churners always are)."""
        mask = np.ones(self.node_count, dtype=bool)
        if self.churners.shape[0]:
            toggled = (self._toggles <= time_s).sum(axis=1)
            mask[self.churners] = toggled % 2 == 0
        return mask


# ----------------------------------------------------------------------
# Metrics (array-native MetricsCollector equivalent)
# ----------------------------------------------------------------------
class BatchMetrics:
    """Array-native metric accumulation with the collector's semantics.

    Feeding every batched observation through
    :meth:`~repro.metrics.collector.MetricsCollector.record_sample` would
    reintroduce a per-sample Python loop and erase the vectorized
    backend's advantage, so this class accumulates the same quantities --
    per-node relative-error streams inside the measurement window,
    coordinate movement at both levels, application-update counts -- as
    per-tick array operations, and answers the same queries the scenario
    kernel asks of a collector (``system_snapshot``,
    ``per_node_error_percentile``, ``per_node_instability``,
    ``latest_coordinates``).

    Memory note: error samples are retained per tick for exact
    percentiles, so a run stores ``O(nodes * ticks)`` floats -- ~40 bytes
    per completed observation.  A 10k-node, 120-tick run is ~50 MB.
    """

    def __init__(
        self, host_ids: List[str], dimensions: int, measurement_start_s: float
    ) -> None:
        self.host_ids = list(host_ids)
        self.measurement_start_s = float(measurement_start_s)
        n = len(host_ids)
        self._dimensions = dimensions
        self._ever = np.zeros(n, dtype=bool)
        self._observation_counts = np.zeros(n, dtype=np.int64)
        self._prev_sys = np.zeros((n, dimensions))
        self._prev_app = np.zeros((n, dimensions))
        self._sys_move_all = np.zeros(n)
        self._sys_move_window = np.zeros(n)
        self._app_move_all = np.zeros(n)
        self._app_move_window = np.zeros(n)
        self._app_updates_window = np.zeros(n, dtype=np.int64)
        self._err_chunks: List[Tuple[np.ndarray, np.ndarray]] = []
        self._app_err_chunks: List[Tuple[np.ndarray, np.ndarray]] = []
        #: Memoised per-node grouping per level; a system_snapshot() asks
        #: four percentile questions, each of which would otherwise re-sort
        #: the whole retained sample set.
        self._grouping_cache: Dict[str, Tuple[int, Dict[int, np.ndarray]]] = {}
        self._first_time_s: Optional[float] = None
        self._last_time_s: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_tick(
        self, time_s: float, node_idx: np.ndarray, outcome: TickOutcome
    ) -> None:
        if node_idx.shape[0] == 0:
            return
        if self._first_time_s is None:
            self._first_time_s = time_s
        self._last_time_s = time_s
        in_window = time_s >= self.measurement_start_s

        ever = self._ever[node_idx]
        sys_delta = outcome.system_coords - self._prev_sys[node_idx]
        app_delta = outcome.application_coords - self._prev_app[node_idx]
        sys_move = np.where(ever, _row_norm(sys_delta), 0.0)
        app_move = np.where(ever, _row_norm(app_delta), 0.0)
        self._sys_move_all[node_idx] += sys_move
        self._app_move_all[node_idx] += app_move
        if in_window:
            self._sys_move_window[node_idx] += sys_move
            self._app_move_window[node_idx] += app_move
            self._app_updates_window[node_idx] += outcome.application_updated
            recorded = ~np.isnan(outcome.relative_error)
            if np.any(recorded):
                self._err_chunks.append(
                    (node_idx[recorded], outcome.relative_error[recorded])
                )
            app_recorded = ~np.isnan(outcome.application_relative_error)
            if np.any(app_recorded):
                self._app_err_chunks.append(
                    (
                        node_idx[app_recorded],
                        outcome.application_relative_error[app_recorded],
                    )
                )
        self._prev_sys[node_idx] = outcome.system_coords
        self._prev_app[node_idx] = outcome.application_coords
        self._ever[node_idx] = True
        self._observation_counts[node_idx] += 1

    # ------------------------------------------------------------------
    # Interval bookkeeping (mirrors MetricsCollector)
    # ------------------------------------------------------------------
    def _measurement_bounds(self) -> Tuple[float, float]:
        start = max(self.measurement_start_s, self._first_time_s or 0.0)
        end = self._last_time_s if self._last_time_s is not None else start
        return start, max(start, end)

    @property
    def measurement_duration_s(self) -> float:
        start, end = self._measurement_bounds()
        return end - start

    def node_ids(self) -> List[str]:
        return [self.host_ids[i] for i in np.nonzero(self._ever)[0]]

    # ------------------------------------------------------------------
    # Per-node summaries
    # ------------------------------------------------------------------
    def _error_values_by_node(self, *, level: str) -> Dict[int, np.ndarray]:
        chunks = self._err_chunks if level == "system" else self._app_err_chunks
        if not chunks:
            return {}
        cached = self._grouping_cache.get(level)
        if cached is not None and cached[0] == len(chunks):
            return cached[1]
        idx = np.concatenate([c[0] for c in chunks])
        values = np.concatenate([c[1] for c in chunks])
        order = np.argsort(idx, kind="stable")
        idx = idx[order]
        values = values[order]
        boundaries = np.nonzero(np.diff(idx))[0] + 1
        groups = np.split(values, boundaries)
        nodes = idx[np.concatenate(([0], boundaries))]
        grouping = {int(node): group for node, group in zip(nodes, groups)}
        self._grouping_cache[level] = (len(chunks), grouping)
        return grouping

    def per_node_error_percentile(
        self, percentile: float, *, level: str = "system"
    ) -> Dict[str, float]:
        return {
            self.host_ids[node]: float(np.percentile(values, percentile))
            for node, values in sorted(self._error_values_by_node(level=level).items())
        }

    def per_node_median_error(self, *, level: str = "system") -> Dict[str, float]:
        return self.per_node_error_percentile(50.0, level=level)

    def per_node_instability(self, *, level: str = "system") -> Dict[str, float]:
        start, end = self._measurement_bounds()
        duration = max(end - start, 1e-9)
        if level == "system":
            window, everything = self._sys_move_window, self._sys_move_all
        else:
            window, everything = self._app_move_window, self._app_move_all
        # movement_since(start): when the window opens before the first
        # record, every recorded movement counts.
        first = self._first_time_s if self._first_time_s is not None else 0.0
        movement = everything if self.measurement_start_s <= first else window
        return {
            self.host_ids[i]: float(movement[i] / duration)
            for i in np.nonzero(self._ever)[0]
        }

    def per_node_update_counts(self) -> Dict[str, int]:
        return {
            self.host_ids[i]: int(self._app_updates_window[i])
            for i in np.nonzero(self._ever)[0]
        }

    # ------------------------------------------------------------------
    # System summaries
    # ------------------------------------------------------------------
    @staticmethod
    def _median(values: Dict[str, float]) -> Optional[float]:
        if not values:
            return None
        return float(np.percentile(list(values.values()), 50.0))

    def aggregate_instability(self, *, level: str = "system") -> float:
        return float(sum(self.per_node_instability(level=level).values()))

    def application_updates_per_node_per_second(self) -> float:
        start, end = self._measurement_bounds()
        duration = max(end - start, 1e-9)
        node_count = int(self._ever.sum())
        if node_count == 0:
            return 0.0
        return float(self._app_updates_window.sum()) / duration / node_count

    def system_snapshot(self) -> SystemSnapshot:
        median_err = self.per_node_median_error(level="system")
        p95_err = self.per_node_error_percentile(95.0, level="system")
        app_median_err = self.per_node_median_error(level="application")
        app_p95_err = self.per_node_error_percentile(95.0, level="application")
        system_instability = self.per_node_instability(level="system")
        app_instability = self.per_node_instability(level="application")
        return SystemSnapshot(
            node_count=int(self._ever.sum()),
            duration_s=self.measurement_duration_s,
            median_of_median_error=self._median(median_err),
            median_of_p95_error=self._median(p95_err),
            median_of_median_application_error=self._median(app_median_err),
            median_of_p95_application_error=self._median(app_p95_err),
            aggregate_system_instability=float(sum(system_instability.values())),
            aggregate_application_instability=float(sum(app_instability.values())),
            median_node_system_instability=self._median(system_instability) or 0.0,
            median_node_application_instability=self._median(app_instability) or 0.0,
            application_updates_per_node_per_s=self.application_updates_per_node_per_second(),
        )

    def latest_coordinates(self, *, level: str = "application") -> Dict[str, Coordinate]:
        source = self._prev_sys if level == "system" else self._prev_app
        return {
            self.host_ids[i]: Coordinate(source[i].tolist())
            for i in np.nonzero(self._ever)[0]
        }


def _row_norm(delta: np.ndarray) -> np.ndarray:
    acc = delta[:, 0] * delta[:, 0]
    for j in range(1, delta.shape[1]):
        acc = acc + delta[:, j] * delta[:, j]
    return np.sqrt(acc)


# ----------------------------------------------------------------------
# The batch run
# ----------------------------------------------------------------------
@dataclass(slots=True)
class BatchSimulationResult:
    """Outcome of one batch simulation run."""

    config: SimulationConfig
    backend: str
    host_ids: List[str]
    metrics: BatchMetrics
    samples_attempted: int
    samples_completed: int
    ticks: int
    churn_transitions: int
    #: One-off cost of building the dataset-derived arrays (link sampler,
    #: churn timeline); excluded from throughput numbers.
    setup_s: float
    #: Wall-clock time of the tick loop itself.
    run_s: float
    #: Per-phase wall-clock breakdown (``--profile``): sampling, filter,
    #: spring update, heuristic, metrics (and snapshot publishing when a
    #: ``publish_store`` is attached).
    profile: Dict[str, float] = field(default_factory=dict)
    final_application: List[Coordinate] = field(default_factory=list)
    final_system: List[Coordinate] = field(default_factory=list)
    #: Array twins of the final coordinate lists: ``(components, heights)``
    #: in host order, fed to the service layer without object
    #: materialisation.
    final_application_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None
    final_system_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None
    #: Coordinate epochs pushed into the attached ``publish_store``.
    snapshots_published: int = 0

    @property
    def collector(self) -> BatchMetrics:
        """Duck-typed stand-in for the event-driven run's collector."""
        return self.metrics

    def application_coordinates(self) -> Dict[str, Coordinate]:
        return dict(zip(self.host_ids, self.final_application))

    @property
    def ticks_per_s(self) -> float:
        return self.ticks / self.run_s if self.run_s > 0 else float("inf")


def build_neighbor_table(
    host_count: int, bootstrap_neighbors: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Fixed neighbor sets: the bootstrap ring plus one random contact.

    Reproduces :func:`~repro.netsim.runner.run_simulation`'s bootstrap
    construction exactly (same ``derive_rng(seed, "bootstrap")`` stream,
    same de-duplication), minus the gossip growth that the batch model
    deliberately omits.  Returns ``(neighbor_matrix, neighbor_counts)``
    with unused slots zero-filled.
    """
    bootstrap_rng = derive_rng(seed, "bootstrap")
    lists: List[List[int]] = []
    ring_size = min(bootstrap_neighbors, host_count - 1)
    for index in range(host_count):
        candidates = [(index + offset + 1) % host_count for offset in range(ring_size)]
        candidates.append(int(bootstrap_rng.integers(0, host_count)))
        chosen: List[int] = []
        for candidate in candidates:
            if candidate != index and candidate not in chosen:
                chosen.append(candidate)
        lists.append(chosen)
    kmax = max(len(chosen) for chosen in lists)
    matrix = np.zeros((host_count, kmax), dtype=np.int64)
    counts = np.zeros(host_count, dtype=np.int64)
    for i, chosen in enumerate(lists):
        counts[i] = len(chosen)
        matrix[i, : len(chosen)] = chosen
    return matrix, counts


def run_batch_simulation(
    config: SimulationConfig,
    *,
    backend: str = "vectorized",
    dataset: Optional[PlanetLabDataset] = None,
    collect_profile: bool = False,
    publish_store: Optional[EpochPublisher] = None,
    publish_every_ticks: Optional[int] = None,
    publish_mode: str = "delta",
    health=None,
    health_every_ticks: Optional[int] = None,
) -> BatchSimulationResult:
    """Run the synchronous-round simulation on the chosen backend.

    ``dataset`` can be supplied to share one network universe between runs
    (e.g. scalar-vs-vectorized comparisons); otherwise one is generated
    from ``config.seed`` exactly as the event-driven runner would.

    ``publish_store`` is any :class:`~repro.service.publish.EpochPublisher`
    -- in practice a :class:`~repro.service.snapshot.SnapshotStore`, a
    :class:`~repro.server.sharding.ShardedCoordinateStore` or a
    :class:`~repro.server.live.LiveServingHarness` (the protocol module is
    dependency-light, so netsim still never imports the serving stack).
    The final application-level coordinates are always published when a
    store is attached; ``publish_every_ticks`` additionally publishes an
    epoch every that many ticks, each a new immutable version.

    ``publish_mode`` selects how those epochs travel: ``"delta"`` (the
    default) publishes only the changed rows after the first full epoch
    -- a node counts as changed iff it received samples or its row moved
    since the previous publish -- via
    :meth:`~repro.service.publish.EpochPublisher.publish_delta`, which is
    what makes millisecond epoch rollover possible at low churn;
    ``"full"`` publishes every epoch whole, exactly the old behaviour.
    Either way each published epoch adopts the backend's (detached)
    application-level arrays -- one ``(n, d)`` materialisation per epoch,
    never per-node objects -- and the resulting store state is
    byte-identical between the two modes.

    ``health`` is anything exposing ``observe_epoch(node_ids, components,
    heights, *, version, time_s)`` -- in practice a
    :class:`~repro.obs.health.HealthTracker` (duck-typed so netsim never
    imports the obs layer).  It observes every published epoch, and --
    when ``health_every_ticks`` is set -- every that many ticks even
    without a store, always from the same detached application-level
    arrays, at most once per tick.
    """
    if backend not in BACKEND_KINDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKEND_KINDS}")
    setup_started = time.perf_counter()
    if dataset is None:
        dataset = PlanetLabDataset.generate(
            config.nodes, seed=config.seed, parameters=config.dataset
        )
    host_ids = dataset.topology.host_ids
    if len(host_ids) < config.nodes:
        raise ValueError(
            f"dataset provides {len(host_ids)} hosts but the simulation needs {config.nodes}"
        )
    host_ids = host_ids[: config.nodes]
    n = len(host_ids)

    measurement_start = (
        config.measurement_start_s
        if config.measurement_start_s is not None
        else config.duration_s / 2.0
    )
    interval = config.protocol.sampling_interval_s
    ticks = max(1, int(math.floor(config.duration_s / interval)))

    neighbor_matrix, neighbor_counts = build_neighbor_table(
        n, config.bootstrap_neighbors, config.seed
    )
    sampler = BatchLinkSampler(dataset, host_ids, neighbor_matrix, neighbor_counts)
    churn = (
        BatchChurnSchedule(n, config.churn, config.duration_s, config.seed)
        if config.churn is not None
        else None
    )
    backend_impl = make_backend(
        backend, host_ids, config.node_config, neighbor_matrix.shape[1]
    )
    metrics = BatchMetrics(host_ids, config.node_config.vivaldi.dimensions, measurement_start)

    loss_rng = derive_rng(config.seed, "batch-protocol")
    link_rng = derive_rng(config.seed, "batch-links")
    loss_probability = config.network.loss_probability
    round_robin = np.zeros(n, dtype=np.int64)
    all_nodes = np.arange(n, dtype=np.int64)

    if publish_mode not in ("full", "delta"):
        raise ValueError(
            f"unknown publish_mode {publish_mode!r}; expected 'full' or 'delta'"
        )
    if publish_every_ticks is not None:
        if publish_store is None:
            raise ValueError(
                f"publish_every_ticks={publish_every_ticks!r} requires a "
                "publish_store; pass publish_store= (any EpochPublisher, e.g. "
                "SnapshotStore, ShardedCoordinateStore or LiveServingHarness) "
                "together with publish_every_ticks, or drop publish_every_ticks"
            )
        if publish_every_ticks < 1:
            raise ValueError(
                f"publish_every_ticks must be >= 1, got {publish_every_ticks!r}"
            )
    if publish_store is not None and not isinstance(publish_store, EpochPublisher):
        raise TypeError(
            f"publish_store must implement the EpochPublisher protocol "
            f"(publish_epoch + publish_delta); got {type(publish_store).__name__}"
        )
    if health_every_ticks is not None:
        if health is None:
            raise ValueError("health_every_ticks requires a health tracker")
        if health_every_ticks < 1:
            raise ValueError("health_every_ticks must be >= 1")

    samples_attempted = 0
    samples_completed = 0
    sample_seconds = 0.0
    metrics_seconds = 0.0
    publish_seconds = 0.0
    health_seconds = 0.0
    snapshots_published = 0
    health_observed_tick = -1
    #: Delta-publish state: which rows received samples since the last
    #: publish, and the arrays of the last published epoch (detached per
    #: the backend protocol, so retaining them is safe).
    sampled_since_publish = np.zeros(n, dtype=bool)
    prev_components: Optional[np.ndarray] = None
    prev_heights: Optional[np.ndarray] = None
    delta_rows_published = 0
    setup_s = time.perf_counter() - setup_started

    def observe_health(t: float, tick: int, components=None, heights=None) -> None:
        nonlocal health_seconds, health_observed_tick
        if health is None or tick == health_observed_tick:
            return
        phase_started = time.perf_counter()
        if components is None:
            components, heights = backend_impl.coordinate_arrays(level="application")
        health.observe_epoch(
            host_ids,
            components,
            heights,
            version=snapshots_published if snapshots_published else None,
            time_s=t,
        )
        health_observed_tick = tick
        health_seconds += time.perf_counter() - phase_started

    def publish_epoch(label: str, t: float, tick: int) -> None:
        nonlocal publish_seconds, snapshots_published
        nonlocal prev_components, prev_heights, delta_rows_published
        phase_started = time.perf_counter()
        # Application-level arrays are detached per the backend protocol,
        # so the store can adopt (and freeze) them without another copy.
        components, heights = backend_impl.coordinate_arrays(level="application")
        if publish_mode == "full" or prev_components is None:
            # The first epoch is always full: it establishes the
            # population the deltas are relative to.
            publish_store.publish_epoch(host_ids, components, heights, source=label)
        else:
            # Changed iff sampled since the last publish OR the row moved
            # (belt and braces: a row can move without sampling, e.g.
            # post-hoc corrections, and sample without moving).  Unchanged
            # rows are bit-identical to the base generation's, which is
            # what keeps delta publishes byte-identical to full rebuilds.
            changed = sampled_since_publish | (
                (components != prev_components).any(axis=1)
                | (heights != prev_heights)
            )
            rows = np.nonzero(changed)[0]
            delta = EpochDelta(
                [host_ids[row] for row in rows],
                components[rows],
                heights[rows],
                source=label,
                epoch=tick,
            )
            publish_store.publish_delta(delta)
            delta_rows_published += int(rows.shape[0])
        prev_components, prev_heights = components, heights
        sampled_since_publish[:] = False
        snapshots_published += 1
        publish_seconds += time.perf_counter() - phase_started
        observe_health(t, tick, components, heights)

    run_started = time.perf_counter()
    for k in range(ticks):
        t = (k + 1) * interval

        phase_started = time.perf_counter()
        online = churn.online_mask(t) if churn is not None else np.ones(n, dtype=bool)
        observers = all_nodes[online]
        slots = round_robin[observers] % neighbor_counts[observers]
        targets = neighbor_matrix[observers, slots]
        round_robin[observers] += 1
        samples_attempted += int(observers.shape[0])

        answering = online[targets]
        observers = observers[answering]
        slots = slots[answering]
        targets = targets[answering]
        if loss_probability > 0.0 and observers.shape[0]:
            delivered = loss_rng.uniform(size=observers.shape[0]) >= loss_probability
            observers = observers[delivered]
            slots = slots[delivered]
            targets = targets[delivered]
        samples_completed += int(observers.shape[0])
        rtt = sampler.sample(observers, slots, t, link_rng)
        sample_seconds += time.perf_counter() - phase_started

        outcome = backend_impl.tick(
            TickObservations(node_idx=observers, peer_idx=targets, slot_idx=slots, rtt_ms=rtt)
        )

        phase_started = time.perf_counter()
        metrics.record_tick(t, observers, outcome)
        metrics_seconds += time.perf_counter() - phase_started

        if publish_store is not None and observers.shape[0]:
            sampled_since_publish[observers] = True

        if publish_every_ticks is not None and (k + 1) % publish_every_ticks == 0:
            publish_epoch(f"batch:{backend}:tick{k + 1}", t, k + 1)
        if health_every_ticks is not None and (k + 1) % health_every_ticks == 0:
            observe_health(t, k + 1)
    if publish_store is not None:
        publish_epoch(f"batch:{backend}:final", ticks * interval, ticks)
    elif health is not None:
        observe_health(ticks * interval, ticks)
    run_s = time.perf_counter() - run_started

    profile: Dict[str, float] = {}
    if collect_profile:
        profile = {
            "ticks": float(ticks),
            "sample_s": round(sample_seconds, 6),
            "metrics_s": round(metrics_seconds, 6),
            "run_s": round(run_s, 6),
            "setup_s": round(setup_s, 6),
            "ticks_per_s": round(ticks / run_s, 3) if run_s > 0 else float("inf"),
        }
        if publish_store is not None:
            profile["publish_s"] = round(publish_seconds, 6)
            profile["snapshots_published"] = float(snapshots_published)
            if publish_mode == "delta":
                profile["delta_rows_published"] = float(delta_rows_published)
        if health is not None:
            profile["health_s"] = round(health_seconds, 6)
        for phase, seconds in backend_impl.phase_seconds.items():
            profile[f"{phase}_s"] = round(seconds, 6)

    return BatchSimulationResult(
        config=config,
        backend=backend,
        host_ids=host_ids,
        metrics=metrics,
        samples_attempted=samples_attempted,
        samples_completed=samples_completed,
        ticks=ticks,
        churn_transitions=churn.transitions if churn is not None else 0,
        setup_s=setup_s,
        run_s=run_s,
        profile=profile,
        final_application=backend_impl.final_coordinates(level="application"),
        final_system=backend_impl.final_coordinates(level="system"),
        final_application_arrays=backend_impl.coordinate_arrays(level="application"),
        final_system_arrays=backend_impl.coordinate_arrays(level="system"),
        snapshots_published=snapshots_published,
    )
