"""The discrete-event simulation loop.

A :class:`Simulator` owns the virtual clock and the event queue.  Components
schedule callbacks relative to the current time (``schedule_in``) or at an
absolute time (``schedule_at``); ``run_until`` drains events in time order
up to a horizon.  The simulator is single-threaded and deterministic: given
the same seeds and the same scheduling order, two runs are bit-identical.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.events import Event, EventQueue

__all__ = ["Simulator"]


class Simulator:
    """Virtual clock plus event queue."""

    def __init__(self, start_time_s: float = 0.0) -> None:
        if start_time_s < 0.0:
            raise ValueError("start_time_s must be non-negative")
        self._now = start_time_s
        self._queue = EventQueue()
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time_s: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulation time ``time_s``."""
        if time_s < self._now:
            raise ValueError(
                f"cannot schedule in the past: now={self._now}, requested={time_s}"
            )
        return self._queue.push(time_s, callback, label)

    def schedule_in(self, delay_s: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` ``delay_s`` seconds from now."""
        if delay_s < 0.0:
            raise ValueError(f"delay must be non-negative, got {delay_s}")
        return self._queue.push(self._now + delay_s, callback, label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next event.  Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = max(self._now, event.time_s)
        self._events_processed += 1
        event.callback()
        return True

    def run_until(self, end_time_s: float, *, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= end_time_s``; returns events processed.

        ``max_events`` is a safety valve for runaway schedules (each event
        may schedule more events); ``None`` means unlimited.
        """
        if end_time_s < self._now:
            raise ValueError("end_time_s must not precede the current time")
        processed = 0
        while True:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > end_time_s:
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        # Advance the clock to the horizon even if no event lands exactly there.
        self._now = max(self._now, end_time_s)
        return processed

    def run_all(self, *, max_events: int = 10_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``)."""
        processed = 0
        while processed < max_events and self.step():
            processed += 1
        return processed
