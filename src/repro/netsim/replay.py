"""Trace-driven replay of the coordinate algorithm.

The paper's simulator "accepted our raw ping trace as input and mimicked
the distributed behavior of Vivaldi": each trace record ``(t, src, dst,
rtt)`` is delivered to the *source* node, which observes the destination's
current coordinate state exactly as the live protocol would have.  Replay
is the workhorse for the Section III-V experiments because every candidate
configuration sees the identical observation stream, making comparisons
apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.config import NodeConfig
from repro.core.node import CoordinateNode
from repro.latency.trace import LatencyTrace
from repro.metrics.collector import MetricsCollector

__all__ = ["ReplayResult", "replay_trace"]


@dataclass(frozen=True, slots=True)
class ReplayResult:
    """Outcome of a trace replay."""

    nodes: Dict[str, CoordinateNode]
    collector: MetricsCollector
    records_processed: int

    @property
    def snapshot(self):
        """Convenience accessor for the system-wide metric summary."""
        return self.collector.system_snapshot()

    def application_coordinates(self):
        """Final application-level coordinate per node (workload queries)."""
        return {
            node_id: node.application_coordinate for node_id, node in self.nodes.items()
        }


def replay_trace(
    trace: LatencyTrace,
    config: NodeConfig,
    *,
    measurement_start_s: Optional[float] = None,
    per_node_config: Optional[Dict[str, NodeConfig]] = None,
    on_record: Optional[Callable[[float, CoordinateNode], None]] = None,
) -> ReplayResult:
    """Replay a latency trace through a set of coordinate nodes.

    Parameters
    ----------
    trace:
        The observation stream.  Each record updates the *source* node.
    config:
        Configuration applied to every node (overridable per node with
        ``per_node_config``).
    measurement_start_s:
        Metrics before this absolute trace time are excluded from the
        summary statistics (the paper reports the second half of each run
        to eliminate start-up effects).  Defaults to the trace midpoint.
    per_node_config:
        Optional per-node configuration overrides.
    on_record:
        Optional hook called after every processed record with the current
        trace time and the updated node (used by the drift experiment to
        snapshot coordinates over time).
    """
    if len(trace) == 0:
        raise ValueError("cannot replay an empty trace")
    if measurement_start_s is None:
        measurement_start_s = trace.start_time_s + trace.duration_s / 2.0

    nodes: Dict[str, CoordinateNode] = {}
    for node_id in trace.nodes():
        node_config = config
        if per_node_config is not None and node_id in per_node_config:
            node_config = per_node_config[node_id]
        nodes[node_id] = CoordinateNode(node_id, node_config)

    collector = MetricsCollector(measurement_start_s=measurement_start_s)

    processed = 0
    for record in trace:
        source = nodes[record.src]
        target = nodes[record.dst]
        result = source.observe(
            record.dst,
            target.system_coordinate,
            target.error_estimate,
            record.rtt_ms,
            peer_application_coordinate=target.application_coordinate,
        )
        collector.record_sample(
            record.time_s,
            record.src,
            system_coordinate=result.system_coordinate,
            application_coordinate=source.application_coordinate,
            relative_error=result.relative_error,
            application_relative_error=result.application_relative_error,
            application_updated=result.application_update is not None,
        )
        processed += 1
        if on_record is not None:
            on_record(record.time_s, source)

    return ReplayResult(nodes=nodes, collector=collector, records_processed=processed)
