"""Event queue primitives for the discrete-event simulator.

Events are ordered by simulation time with a monotonically increasing
sequence number as the tie breaker, so simultaneous events fire in the
order they were scheduled (deterministic replay).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """One scheduled callback in the simulation."""

    time_s: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the heap but is skipped)."""
        self.cancelled = True


class EventQueue:
    """A time-ordered queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def push(self, time_s: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute time ``time_s``."""
        if time_s < 0.0:
            raise ValueError(f"event time must be non-negative, got {time_s}")
        event = Event(time_s=time_s, sequence=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time_s if self._heap else None

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0
