"""Message delivery over the simulated network.

The :class:`Network` turns a :class:`~repro.latency.planetlab.PlanetLabDataset`
into a message substrate for the protocol simulation: sending a message
between two hosts samples the pair's link model once for the round trip and
delivers the message after half of that RTT (plus the other half for the
reply, handled by the protocol).  Optional message loss models dropped
pings -- the real system's pings are UDP and do get lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.latency.planetlab import PlanetLabDataset
from repro.netsim.simulator import Simulator
from repro.stats.sampling import derive_rng

__all__ = ["Network", "NetworkConfig"]


@dataclass(frozen=True, slots=True)
class NetworkConfig:
    """Network-level behaviour knobs."""

    #: Probability that a ping (request/response pair) is lost entirely.
    loss_probability: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must be within [0, 1)")


class Network:
    """Delivers messages between simulated hosts with realistic latency."""

    def __init__(
        self,
        simulator: Simulator,
        dataset: PlanetLabDataset,
        *,
        config: NetworkConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.simulator = simulator
        self.dataset = dataset
        self.config = config or NetworkConfig()
        self._rng = derive_rng(seed, "network")
        self._messages_sent = 0
        self._messages_lost = 0

    @property
    def messages_sent(self) -> int:
        return self._messages_sent

    @property
    def messages_lost(self) -> int:
        return self._messages_lost

    def measure_rtt(self, src: str, dst: str) -> Optional[float]:
        """Draw one round-trip observation for a ping, or ``None`` if lost."""
        self._messages_sent += 1
        if self._rng.uniform() < self.config.loss_probability:
            self._messages_lost += 1
            return None
        return self.dataset.sample_rtt(src, dst, self.simulator.now, self._rng)

    def send_ping(
        self,
        src: str,
        dst: str,
        on_response: Callable[[float], None],
        on_loss: Callable[[], None] | None = None,
    ) -> None:
        """Simulate one request/response ping from ``src`` to ``dst``.

        ``on_response(rtt_ms)`` fires at the source after the full round
        trip; ``on_loss`` (if given) fires after a timeout when the ping is
        lost.
        """
        rtt_ms = self.measure_rtt(src, dst)
        if rtt_ms is None:
            if on_loss is not None:
                # A lost UDP ping is noticed only by the lack of a response;
                # model the timeout as a generous two seconds.
                self.simulator.schedule_in(2.0, on_loss, label=f"loss {src}->{dst}")
            return
        delay_s = rtt_ms / 1000.0
        self.simulator.schedule_in(
            delay_s, lambda: on_response(rtt_ms), label=f"pong {dst}->{src}"
        )
