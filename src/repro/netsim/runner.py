"""End-to-end protocol simulation runner (the Section VI experiment driver).

:func:`run_simulation` wires together the dataset (topology + link models),
the discrete-event simulator, the network, the hosts, the sampling
protocol, and a metrics collector, runs for a configured duration, and
returns everything needed for reporting.  Different coordinate
configurations run against the *same* seeds, so the underlying network
universe (who is where, which links are lossy, when routes shift) is
identical across configurations -- the moral equivalent of the paper
running its filtered and unfiltered systems side by side on the same
PlanetLab nodes at the same time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import NodeConfig
from repro.latency.planetlab import DatasetParameters, PlanetLabDataset
from repro.metrics.collector import MetricsCollector
from repro.netsim.churn import ChurnConfig, ChurnModel
from repro.netsim.host import SimulatedHost
from repro.netsim.network import Network, NetworkConfig
from repro.netsim.protocol import PingProtocol, ProtocolConfig
from repro.netsim.simulator import Simulator
from repro.stats.sampling import derive_rng

__all__ = ["SimulationConfig", "SimulationResult", "run_simulation"]


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Everything that defines one protocol-simulation run."""

    #: Number of participating hosts (the paper uses ~270).
    nodes: int = 60
    #: Total simulated duration in seconds (the paper runs four hours).
    duration_s: float = 3600.0
    #: Metrics are reported from this time onward (default: half-way).
    measurement_start_s: Optional[float] = None
    #: Coordinate subsystem configuration for every host.
    node_config: NodeConfig = field(default_factory=lambda: NodeConfig.preset("mp_energy"))
    #: Sampling protocol parameters.
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    #: Network behaviour (loss).
    network: NetworkConfig = field(default_factory=NetworkConfig)
    #: Synthetic dataset parameters (heavy tails, route shifts).
    dataset: DatasetParameters = field(default_factory=DatasetParameters)
    #: Optional churn process; ``None`` keeps the population static, as in
    #: the paper's deployment.
    churn: Optional[ChurnConfig] = None
    #: Number of bootstrap neighbors each host starts with.
    bootstrap_neighbors: int = 4
    #: Base random seed for the entire universe.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ValueError("a simulation needs at least two nodes")
        if self.duration_s <= 0.0:
            raise ValueError("duration_s must be positive")
        if self.bootstrap_neighbors < 1:
            raise ValueError("bootstrap_neighbors must be >= 1")


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Outcome of one protocol-simulation run."""

    config: SimulationConfig
    hosts: Dict[str, SimulatedHost]
    collector: MetricsCollector
    samples_attempted: int
    samples_completed: int
    events_processed: int
    churn_transitions: int = 0

    @property
    def snapshot(self):
        """System-wide metric summary over the measurement window."""
        return self.collector.system_snapshot()

    def application_coordinates(self):
        """Final application-level coordinate per host (workload queries)."""
        return {
            host_id: host.node.application_coordinate
            for host_id, host in self.hosts.items()
        }


def run_simulation(
    config: SimulationConfig,
    *,
    dataset: Optional[PlanetLabDataset] = None,
) -> SimulationResult:
    """Run one full protocol simulation and return its metrics.

    ``dataset`` can be supplied to share one network universe between
    several configurations (the usual comparison setup); otherwise a fresh
    dataset is generated from ``config.seed``.
    """
    if dataset is None:
        dataset = PlanetLabDataset.generate(
            config.nodes, seed=config.seed, parameters=config.dataset
        )
    host_ids = dataset.topology.host_ids
    if len(host_ids) < config.nodes:
        raise ValueError(
            f"dataset provides {len(host_ids)} hosts but the simulation needs {config.nodes}"
        )
    host_ids = host_ids[: config.nodes]

    measurement_start = (
        config.measurement_start_s
        if config.measurement_start_s is not None
        else config.duration_s / 2.0
    )

    simulator = Simulator()
    network = Network(simulator, dataset, config=config.network, seed=config.seed)
    collector = MetricsCollector(measurement_start_s=measurement_start)

    # Bootstrap neighbor sets: each host knows the next few hosts in id
    # order (a ring), which guarantees the gossip graph is connected.
    bootstrap_rng = derive_rng(config.seed, "bootstrap")
    hosts: Dict[str, SimulatedHost] = {}
    for index, host_id in enumerate(host_ids):
        neighbors = [
            host_ids[(index + offset + 1) % len(host_ids)]
            for offset in range(min(config.bootstrap_neighbors, len(host_ids) - 1))
        ]
        # One extra random long-range contact accelerates global mixing.
        random_peer = host_ids[int(bootstrap_rng.integers(0, len(host_ids)))]
        hosts[host_id] = SimulatedHost(
            host_id,
            config.node_config,
            initial_neighbors=[*neighbors, random_peer],
        )

    def on_observation(time_s, host, peer_id, raw_rtt_ms, result) -> None:
        collector.record_sample(
            time_s,
            host.host_id,
            system_coordinate=result.system_coordinate,
            application_coordinate=host.application_coordinate,
            relative_error=result.relative_error,
            application_relative_error=result.application_relative_error,
            application_updated=result.application_update is not None,
        )

    protocol = PingProtocol(
        simulator,
        network,
        hosts,
        config=config.protocol,
        seed=config.seed,
        on_observation=on_observation,
    )
    protocol.start()

    churn_model: Optional[ChurnModel] = None
    if config.churn is not None:
        churn_model = ChurnModel(simulator, hosts, config=config.churn, seed=config.seed)
        churn_model.start()

    events = simulator.run_until(config.duration_s)

    return SimulationResult(
        config=config,
        hosts=hosts,
        collector=collector,
        samples_attempted=protocol.samples_attempted,
        samples_completed=protocol.samples_completed,
        events_processed=events,
        churn_transitions=churn_model.transitions if churn_model is not None else 0,
    )
