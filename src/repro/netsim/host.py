"""A simulated host: a coordinate node plus its neighbor set.

The host owns the per-node protocol state that is not part of the
coordinate algorithm itself: the list of known neighbors, the round-robin
sampling cursor, and the address book used for gossip.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.config import NodeConfig
from repro.core.coordinate import Coordinate
from repro.core.node import CoordinateNode, ObservationResult

__all__ = ["SimulatedHost"]


class SimulatedHost:
    """One participant in the protocol simulation."""

    def __init__(
        self,
        host_id: str,
        config: NodeConfig,
        *,
        initial_neighbors: Iterable[str] = (),
        max_neighbors: int = 32,
    ) -> None:
        if max_neighbors < 1:
            raise ValueError("max_neighbors must be >= 1")
        self.host_id = host_id
        self.node = CoordinateNode(host_id, config)
        self.max_neighbors = max_neighbors
        #: Whether the host currently participates in the protocol.  Churn
        #: (see :mod:`repro.netsim.churn`) toggles this flag; an offline
        #: host neither samples nor answers pings.
        self.online = True
        self._neighbors: List[str] = []
        self._round_robin_index = 0
        for neighbor in initial_neighbors:
            self.add_neighbor(neighbor)

    # ------------------------------------------------------------------
    # Neighbor management (gossip)
    # ------------------------------------------------------------------
    @property
    def neighbors(self) -> List[str]:
        return list(self._neighbors)

    def add_neighbor(self, neighbor_id: str) -> bool:
        """Add a neighbor learned through bootstrap or gossip.

        Returns True if the neighbor was new and there was room for it.
        The neighbor set is bounded; the paper's implementation keeps a
        small set and learns new addresses by piggybacking one address on
        every sampling message.
        """
        if neighbor_id == self.host_id or neighbor_id in self._neighbors:
            return False
        if len(self._neighbors) >= self.max_neighbors:
            return False
        self._neighbors.append(neighbor_id)
        return True

    def next_sample_target(self) -> Optional[str]:
        """The next neighbor to sample, cycling round-robin (Section II)."""
        if not self._neighbors:
            return None
        target = self._neighbors[self._round_robin_index % len(self._neighbors)]
        self._round_robin_index += 1
        return target

    def gossip_address(self, rng_uniform: float) -> Optional[str]:
        """Pick one known neighbor address to piggyback on a sampling message."""
        if not self._neighbors:
            return None
        index = int(rng_uniform * len(self._neighbors)) % len(self._neighbors)
        return self._neighbors[index]

    # ------------------------------------------------------------------
    # Coordinate plumbing
    # ------------------------------------------------------------------
    def observe(
        self,
        peer_id: str,
        peer_coordinate: Coordinate,
        peer_error: float,
        rtt_ms: float,
        peer_application_coordinate: Coordinate | None = None,
    ) -> ObservationResult:
        """Feed one measured RTT into the coordinate subsystem."""
        return self.node.observe(
            peer_id,
            peer_coordinate,
            peer_error,
            rtt_ms,
            peer_application_coordinate=peer_application_coordinate,
        )

    @property
    def system_coordinate(self) -> Coordinate:
        return self.node.system_coordinate

    @property
    def application_coordinate(self) -> Coordinate:
        return self.node.application_coordinate

    @property
    def error_estimate(self) -> float:
        return self.node.error_estimate

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SimulatedHost({self.host_id!r}, neighbors={len(self._neighbors)})"
